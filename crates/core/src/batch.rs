//! Batched mutation application — the write path behind streaming ingestion
//! (`a1-ingest`) and [`crate::server::A1Client::apply_batch`].
//!
//! The paper's A1 is fed continuously from Bing's data pipelines over a
//! pub/sub bus (§1, §6); the unit of ingestion is an upsert/delete
//! *mutation* rather than the client API's create/update distinction. This
//! module defines that mutation vocabulary, its JSON wire format — the same
//! shape as the replication-log entry bodies in [`crate::replog::entry`], so
//! a DR log can be replayed through the ingest path — and a [`BatchApplier`]
//! that applies many mutations inside **one** FaRM transaction, resolving
//! each graph's catalog proxies and each type's schema once per batch
//! instead of once per operation.

use crate::catalog::{GraphProxies, VertexProxy};
use crate::convert::{record_from_json, value_to_json};
use crate::error::{A1Error, A1Result};
use crate::replog::entry as log_entry;
use crate::server::{check_active, collect_edge_deletes, pk_value, resolve_edge, A1Inner};
use a1_farm::{Addr, MachineId, Txn};
use a1_json::Json;
use std::collections::HashMap;
use std::sync::Arc;

/// One ingestion mutation. Upserts are idempotent (create-or-replace for
/// vertices, create-if-absent for edges); deletes of absent entities are
/// no-ops — both essential for replaying an at-least-once stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    UpsertVertex {
        tenant: String,
        graph: String,
        ty: String,
        /// Full attribute object, primary key included.
        attrs: Json,
    },
    DeleteVertex {
        tenant: String,
        graph: String,
        ty: String,
        id: Json,
    },
    UpsertEdge {
        tenant: String,
        graph: String,
        src_type: String,
        src_id: Json,
        edge_type: String,
        dst_type: String,
        dst_id: Json,
        data: Option<Json>,
    },
    DeleteEdge {
        tenant: String,
        graph: String,
        src_type: String,
        src_id: Json,
        edge_type: String,
        dst_type: String,
        dst_id: Json,
    },
}

/// What applying one mutation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    Inserted,
    Updated,
    Deleted,
    /// Idempotent no-op (edge already present, entity already absent).
    NoOp,
}

impl Mutation {
    /// Serialize to the shared wire format (the replog entry body shape:
    /// `op` ∈ {`put_vertex`, `del_vertex`, `put_edge`, `del_edge`}).
    pub fn to_json(&self) -> Json {
        match self {
            Mutation::UpsertVertex {
                tenant,
                graph,
                ty,
                attrs,
            } => Json::obj(vec![
                ("op", Json::str("put_vertex")),
                ("tenant", Json::str(tenant)),
                ("graph", Json::str(graph)),
                ("type", Json::str(ty)),
                ("data", attrs.clone()),
            ]),
            Mutation::DeleteVertex {
                tenant,
                graph,
                ty,
                id,
            } => log_entry::vertex_delete(tenant, graph, ty, id),
            Mutation::UpsertEdge {
                tenant,
                graph,
                src_type,
                src_id,
                edge_type,
                dst_type,
                dst_id,
                data,
            } => log_entry::edge_upsert(
                tenant,
                graph,
                src_type,
                src_id,
                edge_type,
                dst_type,
                dst_id,
                data.as_ref().unwrap_or(&Json::Null),
            ),
            Mutation::DeleteEdge {
                tenant,
                graph,
                src_type,
                src_id,
                edge_type,
                dst_type,
                dst_id,
            } => {
                log_entry::edge_delete(tenant, graph, src_type, src_id, edge_type, dst_type, dst_id)
            }
        }
    }

    /// Parse from the wire format. Accepts replication-log entry bodies
    /// verbatim (their extra `key` field on `put_vertex` is ignored — the
    /// primary key must also be present in `data`).
    pub fn from_json(j: &Json) -> A1Result<Mutation> {
        let s = |k: &str| -> A1Result<String> {
            j.get(k)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| A1Error::Schema(format!("mutation missing '{k}'")))
        };
        let v = |k: &str| -> A1Result<Json> {
            j.get(k)
                .cloned()
                .ok_or_else(|| A1Error::Schema(format!("mutation missing '{k}'")))
        };
        match j.get("op").and_then(Json::as_str) {
            Some("put_vertex") => {
                let attrs = v("data")?;
                if !matches!(attrs, Json::Obj(_)) {
                    return Err(A1Error::Schema(
                        "put_vertex 'data' must be an attribute object".into(),
                    ));
                }
                Ok(Mutation::UpsertVertex {
                    tenant: s("tenant")?,
                    graph: s("graph")?,
                    ty: s("type")?,
                    attrs,
                })
            }
            Some("del_vertex") => Ok(Mutation::DeleteVertex {
                tenant: s("tenant")?,
                graph: s("graph")?,
                ty: s("type")?,
                id: v("key")?,
            }),
            Some("put_edge") => Ok(Mutation::UpsertEdge {
                tenant: s("tenant")?,
                graph: s("graph")?,
                src_type: s("src_type")?,
                src_id: v("src")?,
                edge_type: s("etype")?,
                dst_type: s("dst_type")?,
                dst_id: v("dst")?,
                data: match j.get("data") {
                    Some(Json::Null) | None => None,
                    Some(d) => Some(d.clone()),
                },
            }),
            Some("del_edge") => Ok(Mutation::DeleteEdge {
                tenant: s("tenant")?,
                graph: s("graph")?,
                src_type: s("src_type")?,
                src_id: v("src")?,
                edge_type: s("etype")?,
                dst_type: s("dst_type")?,
                dst_id: v("dst")?,
            }),
            other => Err(A1Error::Schema(format!(
                "unknown mutation op {other:?} (expected put_vertex/del_vertex/put_edge/del_edge)"
            ))),
        }
    }

    /// Parse a mutation from JSON text.
    pub fn parse(text: &str) -> A1Result<Mutation> {
        let j = Json::parse(text).map_err(|e| A1Error::Schema(e.to_string()))?;
        Mutation::from_json(&j)
    }

    /// Serialize in the given [`crate::wire::WireFormat`] — the same body
    /// encoding replication-log entries use, so DR logs, ingest streams and
    /// batch RPCs share one vocabulary.
    pub fn to_wire(&self, fmt: crate::wire::WireFormat) -> Vec<u8> {
        crate::wire::encode_mutation_body(&self.to_json(), fmt)
    }

    /// Parse a mutation from either wire format (auto-detected).
    pub fn from_wire(bytes: &[u8]) -> A1Result<Mutation> {
        Mutation::from_json(&crate::wire::decode_mutation_body(bytes)?)
    }

    pub fn tenant(&self) -> &str {
        match self {
            Mutation::UpsertVertex { tenant, .. }
            | Mutation::DeleteVertex { tenant, .. }
            | Mutation::UpsertEdge { tenant, .. }
            | Mutation::DeleteEdge { tenant, .. } => tenant,
        }
    }

    pub fn graph(&self) -> &str {
        match self {
            Mutation::UpsertVertex { graph, .. }
            | Mutation::DeleteVertex { graph, .. }
            | Mutation::UpsertEdge { graph, .. }
            | Mutation::DeleteEdge { graph, .. } => graph,
        }
    }
}

/// Applies mutations inside a caller-managed transaction, caching the
/// per-graph catalog proxies and per-type schema resolution so a batch of
/// N same-type mutations does the catalog work once, not N times.
///
/// Ingested writes still land in the replication log (§4): every applied
/// mutation appends the corresponding entry within the same transaction
/// when the cluster runs with `dr_enabled`.
pub struct BatchApplier<'a> {
    inner: &'a A1Inner,
    machine: MachineId,
    graphs: HashMap<(String, String), Arc<GraphProxies>>,
    /// Vertex addresses this applier mutated (updated, deleted, or touched
    /// as an edge endpoint). The batch write path is the choke point for
    /// read-cache invalidation: after the enclosing transaction commits, the
    /// caller drains this list into
    /// [`A1Inner::invalidate_cached_vertices`]. Correctness never depends on
    /// the list being complete — every cache hit is revalidated against live
    /// FaRM versions — it only bounds how long a stale entry occupies cache
    /// capacity.
    touched: Vec<Addr>,
}

impl<'a> BatchApplier<'a> {
    pub fn new(inner: &'a A1Inner, machine: MachineId) -> BatchApplier<'a> {
        BatchApplier {
            inner,
            machine,
            graphs: HashMap::new(),
            touched: Vec::new(),
        }
    }

    /// Drain the vertex addresses mutated so far (see `touched`). Call after
    /// the transaction containing the applies has committed.
    pub fn take_touched(&mut self) -> Vec<Addr> {
        std::mem::take(&mut self.touched)
    }

    fn graph(&mut self, tenant: &str, graph: &str) -> A1Result<Arc<GraphProxies>> {
        if let Some(p) = self.graphs.get(&(tenant.to_string(), graph.to_string())) {
            return Ok(p.clone());
        }
        let p = self.inner.proxies_at(self.machine, tenant, graph)?;
        self.graphs
            .insert((tenant.to_string(), graph.to_string()), p.clone());
        Ok(p)
    }

    fn vertex_type(proxies: &GraphProxies, ty: &str) -> A1Result<Arc<VertexProxy>> {
        proxies
            .vertex_type(ty)
            .cloned()
            .ok_or_else(|| A1Error::NoSuchType(ty.to_string()))
    }

    /// Apply one mutation. On error the caller must abort the transaction —
    /// partial effects of a failed apply are only discarded by the abort.
    pub fn apply(&mut self, tx: &mut Txn, m: &Mutation) -> A1Result<Applied> {
        let inner = self.inner;
        match m {
            Mutation::UpsertVertex {
                tenant,
                graph,
                ty,
                attrs,
            } => {
                let proxies = self.graph(tenant, graph)?;
                check_active(&proxies)?;
                let vp = Self::vertex_type(&proxies, ty)?;
                let rec = record_from_json(&vp.def.schema, attrs)?;
                let pk = rec
                    .get(vp.def.primary_key)
                    .cloned()
                    .ok_or_else(|| A1Error::Schema("primary key missing".into()))?;
                let applied = match inner.store.vertex_by_pk(tx, &vp, &pk)? {
                    Some(ptr) => {
                        inner.store.update_vertex(tx, &vp, ptr.addr, rec)?;
                        self.touched.push(ptr.addr);
                        Applied::Updated
                    }
                    None => {
                        inner.store.create_vertex(tx, &vp, rec)?;
                        Applied::Inserted
                    }
                };
                if let Some(log) = &inner.replog {
                    let pkj = value_to_json(&pk);
                    log.append(
                        tx,
                        &log_entry::vertex_upsert(tenant, graph, ty, &pkj, attrs),
                    )?;
                }
                Ok(applied)
            }
            Mutation::DeleteVertex {
                tenant,
                graph,
                ty,
                id,
            } => {
                let proxies = self.graph(tenant, graph)?;
                let vp = Self::vertex_type(&proxies, ty)?;
                let pk = pk_value(&vp, id)?;
                let Some(ptr) = inner.store.vertex_by_pk(tx, &vp, &pk)? else {
                    return Ok(Applied::NoOp); // already gone: idempotent
                };
                if let Some(log) = &inner.replog {
                    let edge_logs =
                        collect_edge_deletes(inner, tx, &proxies, tenant, graph, ptr.addr)?;
                    for e in edge_logs {
                        log.append(tx, &e)?;
                    }
                    log.append(tx, &log_entry::vertex_delete(tenant, graph, ty, id))?;
                }
                inner
                    .store
                    .delete_vertex(tx, &proxies.graph, &vp, ptr.addr)?;
                self.touched.push(ptr.addr);
                Ok(Applied::Deleted)
            }
            Mutation::UpsertEdge {
                tenant,
                graph,
                src_type,
                src_id,
                edge_type,
                dst_type,
                dst_id,
                data,
            } => {
                let proxies = self.graph(tenant, graph)?;
                check_active(&proxies)?;
                let (src, dst, et) = resolve_edge(
                    inner, tx, &proxies, src_type, src_id, edge_type, dst_type, dst_id,
                )?;
                // Create-if-absent: ⟨src, type, dst⟩ admits a single edge
                // (§3), so a redelivered edge upsert is a no-op.
                if inner
                    .store
                    .read_edge_data(tx, &proxies.graph, et, src, dst)?
                    .is_some()
                {
                    return Ok(Applied::NoOp);
                }
                let ep = proxies.edge_type_by_id(et).expect("resolved above").clone();
                let rec = match data {
                    Some(d) => Some(record_from_json(&ep.def.schema, d)?),
                    None => None,
                };
                inner
                    .store
                    .create_edge(tx, &proxies.graph, et, src, dst, rec)?;
                // Edge writes mutate both endpoint headers (adjacency
                // counts/lists), so cached copies of either must be dropped.
                self.touched.push(src);
                self.touched.push(dst);
                if let Some(log) = &inner.replog {
                    log.append(
                        tx,
                        &log_entry::edge_upsert(
                            tenant,
                            graph,
                            src_type,
                            src_id,
                            edge_type,
                            dst_type,
                            dst_id,
                            data.as_ref().unwrap_or(&Json::Null),
                        ),
                    )?;
                }
                Ok(Applied::Inserted)
            }
            Mutation::DeleteEdge {
                tenant,
                graph,
                src_type,
                src_id,
                edge_type,
                dst_type,
                dst_id,
            } => {
                let proxies = self.graph(tenant, graph)?;
                let resolved = resolve_edge(
                    inner, tx, &proxies, src_type, src_id, edge_type, dst_type, dst_id,
                );
                let (src, dst, et) = match resolved {
                    Ok(r) => r,
                    // An endpoint is gone: the edge cannot exist either.
                    Err(A1Error::NoSuchVertex(_)) => return Ok(Applied::NoOp),
                    Err(e) => return Err(e),
                };
                let existed = inner.store.delete_edge(tx, &proxies.graph, et, src, dst)?;
                if !existed {
                    return Ok(Applied::NoOp);
                }
                self.touched.push(src);
                self.touched.push(dst);
                if let Some(log) = &inner.replog {
                    log.append(
                        tx,
                        &log_entry::edge_delete(
                            tenant, graph, src_type, src_id, edge_type, dst_type, dst_id,
                        ),
                    )?;
                }
                Ok(Applied::Deleted)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let muts = vec![
            Mutation::UpsertVertex {
                tenant: "t".into(),
                graph: "g".into(),
                ty: "entity".into(),
                attrs: Json::obj(vec![("id", Json::str("v1")), ("rank", Json::Num(3.0))]),
            },
            Mutation::DeleteVertex {
                tenant: "t".into(),
                graph: "g".into(),
                ty: "entity".into(),
                id: Json::str("v1"),
            },
            Mutation::UpsertEdge {
                tenant: "t".into(),
                graph: "g".into(),
                src_type: "entity".into(),
                src_id: Json::str("a"),
                edge_type: "link".into(),
                dst_type: "entity".into(),
                dst_id: Json::str("b"),
                data: Some(Json::obj(vec![("w", Json::Num(1.0))])),
            },
            Mutation::DeleteEdge {
                tenant: "t".into(),
                graph: "g".into(),
                src_type: "entity".into(),
                src_id: Json::str("a"),
                edge_type: "link".into(),
                dst_type: "entity".into(),
                dst_id: Json::str("b"),
            },
        ];
        for m in muts {
            let wire = m.to_json().to_string();
            let back = Mutation::parse(&wire).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn accepts_replog_entry_bodies() {
        // A replication-log vertex upsert carries an extra `key` field; the
        // ingest parser accepts it unchanged (DR log replay).
        let entry = log_entry::vertex_upsert(
            "t",
            "g",
            "entity",
            &Json::str("v1"),
            &Json::obj(vec![("id", Json::str("v1"))]),
        );
        let m = Mutation::from_json(&entry).unwrap();
        assert!(matches!(m, Mutation::UpsertVertex { .. }));
        assert_eq!(m.tenant(), "t");
        assert_eq!(m.graph(), "g");
    }

    #[test]
    fn rejects_malformed() {
        assert!(Mutation::parse(r#"{"op":"nope"}"#).is_err());
        assert!(Mutation::parse(r#"{"op":"put_vertex","tenant":"t"}"#).is_err());
        // put_vertex data must be an object.
        assert!(Mutation::parse(
            r#"{"op":"put_vertex","tenant":"t","graph":"g","type":"e","data":7}"#
        )
        .is_err());
    }
}
