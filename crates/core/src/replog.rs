//! The replication log for disaster recovery (paper §4).
//!
//! Every update transaction transactionally appends a log entry describing
//! its effect. The log lives in FaRM (3-way in-memory replicated like all
//! data). Entries are consumed by the replication pipeline (`a1-recovery`):
//! synchronously right after commit when possible, otherwise by the
//! asynchronous FIFO sweeper.
//!
//! A subtlety from the paper: entries must be applied to ObjectStore in
//! *transaction timestamp* order, but the commit timestamp is unknown while
//! the transaction is still executing. The trick: a log entry's FaRM object
//! is written by the same transaction, so its **object version *is* the
//! commit timestamp** — the sweeper reads it back after commit.

use crate::error::{A1Error, A1Result};
use crate::wire::{self, WireFormat};
use a1_farm::{BTree, BTreeConfig, FarmCluster, Hint, MachineId, Ptr, Txn};
use a1_json::Json;
use std::sync::Arc;

/// Handle to the replication log: a B-tree of ⟨(approx ts, uniq) → entry
/// object pointer⟩, ordered roughly by transaction start; exact ordering is
/// re-established from entry versions.
///
/// Entry bodies are written in the handle's [`WireFormat`] (binary frames by
/// default) but always *read* by auto-detection, so one log may mix
/// JSON-era entries (written by pre-binary builds) with binary-era ones and
/// still replay in order through the §4 DR pipeline.
#[derive(Clone)]
pub struct Replog {
    tree: BTree,
    format: WireFormat,
}

/// A log entry fetched back from FaRM.
#[derive(Debug, Clone)]
pub struct FetchedEntry {
    pub key: Vec<u8>,
    pub ptr: Ptr,
    /// The writing transaction's commit timestamp (the entry object's
    /// version).
    pub commit_ts: u64,
    pub body: Json,
}

impl Replog {
    fn tree_config() -> BTreeConfig {
        BTreeConfig {
            max_keys: 32,
            max_key_len: 16,
            max_val_len: 16,
        }
    }

    pub fn create(farm: &Arc<FarmCluster>) -> A1Result<Replog> {
        Self::create_with(farm, WireFormat::Binary)
    }

    /// Create a log whose entries will be written in `format`.
    pub fn create_with(farm: &Arc<FarmCluster>, format: WireFormat) -> A1Result<Replog> {
        let tree = farm.run(MachineId(0), |tx| {
            BTree::create(tx, Self::tree_config(), Hint::Machine(MachineId(0)))
        })?;
        Ok(Replog { tree, format })
    }

    pub fn open(farm: &Arc<FarmCluster>, header: Ptr) -> A1Result<Replog> {
        Self::open_with(farm, header, WireFormat::Binary)
    }

    /// Open an existing log, writing any *new* entries in `format`.
    /// Existing entries keep whatever format they were written in; readers
    /// auto-detect per entry.
    pub fn open_with(farm: &Arc<FarmCluster>, header: Ptr, format: WireFormat) -> A1Result<Replog> {
        let mut tx = farm.begin_read_only(MachineId(0));
        Ok(Replog {
            tree: BTree::open(&mut tx, header)?,
            format,
        })
    }

    pub fn header(&self) -> Ptr {
        self.tree.header
    }

    /// Append an entry within the caller's (update) transaction.
    pub fn append(&self, tx: &mut Txn, body: &Json) -> A1Result<()> {
        let bytes = wire::encode_mutation_body(body, self.format);
        let obj = tx.alloc(bytes.len().max(1), Hint::Local, &bytes)?;
        let mut key = Vec::with_capacity(16);
        key.extend_from_slice(&tx.read_ts().to_be_bytes());
        key.extend_from_slice(&obj.addr.raw().to_be_bytes());
        let mut val = Vec::with_capacity(Ptr::ENCODED_LEN);
        obj.encode_to(&mut val);
        self.tree.insert(tx, &key, &val)?;
        Ok(())
    }

    /// Scan up to `limit` pending entries in approximate FIFO order,
    /// fetching each entry's body and commit timestamp.
    pub fn fetch_pending(
        &self,
        farm: &Arc<FarmCluster>,
        origin: MachineId,
        limit: usize,
    ) -> A1Result<Vec<FetchedEntry>> {
        let mut tx = farm.begin_read_only(origin);
        let raw = self.tree.scan(&mut tx, &[], &[], limit)?;
        let mut out = Vec::with_capacity(raw.len());
        for (key, val) in raw {
            let ptr =
                Ptr::decode(&val).ok_or_else(|| A1Error::Internal("bad replog value".into()))?;
            let buf = tx.read(ptr)?;
            // Auto-detect binary frame vs. JSON-era text (see struct docs).
            let body = wire::decode_mutation_body(buf.data())?;
            out.push(FetchedEntry {
                key,
                ptr,
                commit_ts: buf.version,
                body,
            });
        }
        Ok(out)
    }

    /// Remove a replicated entry (its durable copy is safe in ObjectStore).
    pub fn remove(
        &self,
        farm: &Arc<FarmCluster>,
        origin: MachineId,
        key: &[u8],
        ptr: Ptr,
    ) -> A1Result<()> {
        let tree = self.tree.clone();
        crate::store::run_a1(farm, origin, |tx| {
            if tree.remove(tx, key)?.is_some() {
                let buf = tx.read(ptr)?;
                tx.free(&buf)?;
            }
            Ok(())
        })
    }

    /// The oldest unreplicated commit timestamp (`tR`, §4), or `None` if the
    /// log is empty (everything durable).
    pub fn oldest_pending_ts(
        &self,
        farm: &Arc<FarmCluster>,
        origin: MachineId,
    ) -> A1Result<Option<u64>> {
        let entries = self.fetch_pending(farm, origin, usize::MAX)?;
        Ok(entries.iter().map(|e| e.commit_ts).min())
    }

    pub fn len(&self, farm: &Arc<FarmCluster>, origin: MachineId) -> A1Result<usize> {
        let mut tx = farm.begin_read_only(origin);
        Ok(self.tree.len(&mut tx)?)
    }

    pub fn is_empty(&self, farm: &Arc<FarmCluster>, origin: MachineId) -> A1Result<bool> {
        Ok(self.len(farm, origin)? == 0)
    }
}

/// Log-entry constructors shared by the server (writer) and recovery
/// (reader) sides.
pub mod entry {
    use a1_json::Json;

    pub fn vertex_upsert(tenant: &str, graph: &str, ty: &str, pk: &Json, data: &Json) -> Json {
        Json::obj(vec![
            ("op", Json::str("put_vertex")),
            ("tenant", Json::str(tenant)),
            ("graph", Json::str(graph)),
            ("type", Json::str(ty)),
            ("key", pk.clone()),
            ("data", data.clone()),
        ])
    }

    pub fn vertex_delete(tenant: &str, graph: &str, ty: &str, pk: &Json) -> Json {
        Json::obj(vec![
            ("op", Json::str("del_vertex")),
            ("tenant", Json::str(tenant)),
            ("graph", Json::str(graph)),
            ("type", Json::str(ty)),
            ("key", pk.clone()),
        ])
    }

    #[allow(clippy::too_many_arguments)]
    pub fn edge_upsert(
        tenant: &str,
        graph: &str,
        src_type: &str,
        src: &Json,
        edge_type: &str,
        dst_type: &str,
        dst: &Json,
        data: &Json,
    ) -> Json {
        Json::obj(vec![
            ("op", Json::str("put_edge")),
            ("tenant", Json::str(tenant)),
            ("graph", Json::str(graph)),
            ("src_type", Json::str(src_type)),
            ("src", src.clone()),
            ("etype", Json::str(edge_type)),
            ("dst_type", Json::str(dst_type)),
            ("dst", dst.clone()),
            ("data", data.clone()),
        ])
    }

    #[allow(clippy::too_many_arguments)]
    pub fn edge_delete(
        tenant: &str,
        graph: &str,
        src_type: &str,
        src: &Json,
        edge_type: &str,
        dst_type: &str,
        dst: &Json,
    ) -> Json {
        Json::obj(vec![
            ("op", Json::str("del_edge")),
            ("tenant", Json::str(tenant)),
            ("graph", Json::str(graph)),
            ("src_type", Json::str(src_type)),
            ("src", src.clone()),
            ("etype", Json::str(edge_type)),
            ("dst_type", Json::str(dst_type)),
            ("dst", dst.clone()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a1_farm::FarmConfig;

    #[test]
    fn append_fetch_remove() {
        let farm = FarmCluster::start(FarmConfig::small(2));
        let log = Replog::create(&farm).unwrap();

        // Two update transactions, each appending an entry.
        for i in 0..2 {
            let log = log.clone();
            farm.run(MachineId(0), move |tx| {
                let body = entry::vertex_upsert(
                    "t",
                    "g",
                    "entity",
                    &Json::str(&format!("v{i}")),
                    &Json::obj(vec![("id", Json::str(&format!("v{i}")))]),
                );
                log.append(tx, &body)
                    .map_err(|_| a1_farm::FarmError::Conflict)
            })
            .unwrap();
        }

        let pending = log.fetch_pending(&farm, MachineId(1), 10).unwrap();
        assert_eq!(pending.len(), 2);
        // Entry versions are real commit timestamps, strictly ordered.
        assert!(pending[0].commit_ts > 0);
        assert!(pending[0].commit_ts < pending[1].commit_ts);
        assert_eq!(
            pending[0].body.get("op").unwrap().as_str(),
            Some("put_vertex")
        );
        let t_r = log.oldest_pending_ts(&farm, MachineId(0)).unwrap();
        assert_eq!(t_r, Some(pending[0].commit_ts));

        // Remove the first (synchronous replication success).
        log.remove(&farm, MachineId(0), &pending[0].key, pending[0].ptr)
            .unwrap();
        assert_eq!(log.len(&farm, MachineId(0)).unwrap(), 1);
        let t_r = log.oldest_pending_ts(&farm, MachineId(0)).unwrap();
        assert_eq!(t_r, Some(pending[1].commit_ts));

        log.remove(&farm, MachineId(0), &pending[1].key, pending[1].ptr)
            .unwrap();
        assert!(log.is_empty(&farm, MachineId(0)).unwrap());
        assert_eq!(log.oldest_pending_ts(&farm, MachineId(0)).unwrap(), None);
    }

    /// Interleaved `append` / `fetch_pending` / `remove` from multiple
    /// threads: the sweeper must see every entry exactly once, and each
    /// appender's entries must drain in append order (the FIFO the §4
    /// replication pipeline depends on).
    #[test]
    fn concurrent_append_fetch_remove_loses_nothing_and_keeps_order() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc as StdArc;

        const WRITERS: u32 = 3;
        const PER_WRITER: usize = 16;
        let farm = FarmCluster::start(FarmConfig::small(3));
        let log = Replog::create(&farm).unwrap();
        let done = StdArc::new(AtomicBool::new(false));

        // The sweeper races the appenders: fetch a few, replicate (no-op
        // here), remove, repeat.
        let sweeper = {
            let farm = farm.clone();
            let log = log.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut seen: Vec<(u64, String)> = Vec::new();
                loop {
                    let pending = log.fetch_pending(&farm, MachineId(1), 4).unwrap();
                    if pending.is_empty() {
                        if done.load(Ordering::Acquire)
                            && log.is_empty(&farm, MachineId(1)).unwrap()
                        {
                            return seen;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    for e in pending {
                        log.remove(&farm, MachineId(0), &e.key, e.ptr).unwrap();
                        let id = e.body.get("key").unwrap().as_str().unwrap().to_string();
                        seen.push((e.commit_ts, id));
                    }
                }
            })
        };

        let appenders: Vec<_> = (0..WRITERS)
            .map(|w| {
                let farm = farm.clone();
                let log = log.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        let log = log.clone();
                        let body = entry::vertex_upsert(
                            "t",
                            "g",
                            "entity",
                            &Json::str(&format!("w{w}-{i:03}")),
                            &Json::obj(vec![("id", Json::str(&format!("w{w}-{i:03}")))]),
                        );
                        farm.run(MachineId(w % 3), move |tx| {
                            log.append(tx, &body)
                                .map_err(|_| a1_farm::FarmError::Conflict)
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in appenders {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let seen = sweeper.join().unwrap();

        // No entry lost, none duplicated.
        assert_eq!(seen.len(), WRITERS as usize * PER_WRITER);
        let mut ids: Vec<&str> = seen.iter().map(|(_, id)| id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), seen.len(), "sweeper saw a duplicate entry");
        // Commit timestamps are genuine and unique.
        let mut ts: Vec<u64> = seen.iter().map(|(t, _)| *t).collect();
        ts.sort_unstable();
        ts.dedup();
        assert_eq!(ts.len(), seen.len());
        // Per appender, entries drained in append order with rising
        // commit timestamps.
        for w in 0..WRITERS {
            let mine: Vec<&(u64, String)> = seen
                .iter()
                .filter(|(_, id)| id.starts_with(&format!("w{w}-")))
                .collect();
            assert_eq!(mine.len(), PER_WRITER);
            for pair in mine.windows(2) {
                assert!(
                    pair[0].1 < pair[1].1,
                    "writer {w} drained out of order: {} before {}",
                    pair[0].1,
                    pair[1].1
                );
                assert!(pair[0].0 < pair[1].0);
            }
        }
    }

    #[test]
    fn reopen_by_header() {
        let farm = FarmCluster::start(FarmConfig::small(1));
        let log = Replog::create(&farm).unwrap();
        let header = log.header();
        let log2 = Replog::open(&farm, header).unwrap();
        assert!(log2.is_empty(&farm, MachineId(0)).unwrap());
    }
}
