//! Edge storage: half-edges, inline edge lists, and the global edge B-tree
//! (paper §3.2, Fig. 7).
//!
//! An edge from v1 to v2 is stored as *two half-edges*: one in v1's outgoing
//! list and one in v2's incoming list, each ⟨edge type, other-vertex
//! pointer, data pointer⟩. Mirroring means deletes never leave dangling
//! edges (the paper's motivating example for not using a TAO-style cache).
//!
//! Small lists live in one variable-length FaRM object that grows
//! geometrically (4 → 8 → … entries). Past `inline_threshold` (≈1000 in the
//! paper; 99.9% of vertices stay below it) the list migrates into the
//! per-graph **global edge B-tree** keyed ⟨owner, direction, edge type,
//! other⟩. Inline lists are co-located with their vertex header via
//! allocation hints, so enumerating a local vertex's edges is a local read.

use crate::error::{A1Error, A1Result};
use crate::model::TypeId;
use crate::vertex::{vertex_ptr, EdgeListRef, VertexHeader};
use a1_farm::{Addr, BTree, FarmError, Hint, ObjBuf, Ptr, Txn};

/// Edge direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    Out,
    In,
}

impl Dir {
    pub fn flip(self) -> Dir {
        match self {
            Dir::Out => Dir::In,
            Dir::In => Dir::Out,
        }
    }

    fn tag(self) -> u8 {
        match self {
            Dir::Out => 0,
            Dir::In => 1,
        }
    }
}

/// One entry in an edge list (24 bytes on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HalfEdge {
    pub edge_type: TypeId,
    /// Header address of the vertex at the other end.
    pub other: Addr,
    /// Edge attribute object (NULL when the edge carries no data — the
    /// common case for knowledge graphs, §6).
    pub data: Ptr,
}

pub const HALF_EDGE_SIZE: usize = 24;

/// Initial inline capacity; doubles on growth (§3.2 "geometric progression").
pub const INITIAL_INLINE_CAP: usize = 4;

/// Default spill threshold (§3.2: "around 1000 edges").
pub const DEFAULT_INLINE_THRESHOLD: usize = 1024;

impl HalfEdge {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.edge_type.0.to_le_bytes());
        out.extend_from_slice(&self.other.raw().to_le_bytes());
        self.data.encode_to(out);
    }

    fn decode(buf: &[u8]) -> Option<HalfEdge> {
        if buf.len() < HALF_EDGE_SIZE {
            return None;
        }
        Some(HalfEdge {
            edge_type: TypeId(u32::from_le_bytes(buf[0..4].try_into().ok()?)),
            other: Addr::from_raw(u64::from_le_bytes(buf[4..12].try_into().ok()?)),
            data: Ptr::decode(&buf[12..24])?,
        })
    }
}

/// Inline edge-list object payload: `[u32 count][u32 cap][entries…]`.
fn list_payload_size(cap: usize) -> usize {
    8 + cap * HALF_EDGE_SIZE
}

fn encode_list(entries: &[HalfEdge], cap: usize) -> Vec<u8> {
    debug_assert!(entries.len() <= cap);
    let mut out = Vec::with_capacity(list_payload_size(cap));
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    out.extend_from_slice(&(cap as u32).to_le_bytes());
    for e in entries {
        e.encode_to(&mut out);
    }
    out
}

fn decode_list(buf: &[u8]) -> A1Result<(Vec<HalfEdge>, usize)> {
    let err = || A1Error::Internal("corrupt edge list".into());
    if buf.len() < 8 {
        return Err(err());
    }
    let count = u32::from_le_bytes(buf[0..4].try_into().map_err(|_| err())?) as usize;
    let cap = u32::from_le_bytes(buf[4..8].try_into().map_err(|_| err())?) as usize;
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let start = 8 + i * HALF_EDGE_SIZE;
        entries.push(HalfEdge::decode(buf.get(start..).ok_or_else(err)?).ok_or_else(err)?);
    }
    Ok((entries, cap))
}

/// Global edge-tree key: `[owner BE][dir][type BE][other BE]` — big-endian so
/// prefix scans enumerate one vertex's (direction, type) runs in order.
pub fn tree_key(owner: Addr, dir: Dir, ty: TypeId, other: Addr) -> Vec<u8> {
    let mut k = Vec::with_capacity(21);
    k.extend_from_slice(&owner.raw().to_be_bytes());
    k.push(dir.tag());
    k.extend_from_slice(&ty.0.to_be_bytes());
    k.extend_from_slice(&other.raw().to_be_bytes());
    k
}

/// Prefix covering all of a vertex's half-edges in one direction.
pub fn tree_prefix_dir(owner: Addr, dir: Dir) -> Vec<u8> {
    let mut k = Vec::with_capacity(9);
    k.extend_from_slice(&owner.raw().to_be_bytes());
    k.push(dir.tag());
    k
}

/// Prefix for one (direction, edge type).
pub fn tree_prefix_type(owner: Addr, dir: Dir, ty: TypeId) -> Vec<u8> {
    let mut k = tree_prefix_dir(owner, dir);
    k.extend_from_slice(&ty.0.to_be_bytes());
    k
}

fn parse_tree_entry(key: &[u8], value: &[u8]) -> A1Result<HalfEdge> {
    let err = || A1Error::Internal("corrupt edge tree key".into());
    if key.len() != 21 {
        return Err(err());
    }
    let ty = TypeId(u32::from_be_bytes(
        key[9..13].try_into().map_err(|_| err())?,
    ));
    let other = Addr::from_raw(u64::from_be_bytes(
        key[13..21].try_into().map_err(|_| err())?,
    ));
    let data = if value.is_empty() {
        Ptr::NULL
    } else {
        Ptr::decode(value).ok_or_else(err)?
    };
    Ok(HalfEdge {
        edge_type: ty,
        other,
        data,
    })
}

/// Edge-list tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EdgeConfig {
    pub inline_threshold: usize,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            inline_threshold: DEFAULT_INLINE_THRESHOLD,
        }
    }
}

/// Insert a half-edge into `owner`'s list for `dir`, updating the header
/// in memory (caller persists the header once per transaction). Fails with
/// `EdgeExists` on duplicates.
#[allow(clippy::too_many_arguments)]
pub fn insert_half_edge(
    tx: &mut Txn,
    edge_tree: &BTree,
    cfg: &EdgeConfig,
    owner_addr: Addr,
    hdr: &mut VertexHeader,
    dir: Dir,
    edge: HalfEdge,
) -> A1Result<()> {
    match hdr.edges(dir) {
        EdgeListRef::Empty => {
            let list = encode_list(&[edge], INITIAL_INLINE_CAP);
            let ptr = tx.alloc(
                list_payload_size(INITIAL_INLINE_CAP),
                Hint::Near(owner_addr),
                &list,
            )?;
            hdr.set_edges(dir, EdgeListRef::Inline(ptr));
        }
        EdgeListRef::Inline(ptr) => {
            let buf = tx.read(ptr)?;
            let (mut entries, cap) = decode_list(buf.data())?;
            if entries
                .iter()
                .any(|e| e.edge_type == edge.edge_type && e.other == edge.other)
            {
                return Err(A1Error::EdgeExists(format!(
                    "type {} {:?} {}",
                    edge.edge_type.0, dir, edge.other
                )));
            }
            entries.push(edge);
            if entries.len() <= cap {
                tx.update(&buf, encode_list(&entries, cap))?;
            } else if cap * 2 <= cfg.inline_threshold {
                // Geometric growth: realloc at double capacity, keep locality.
                let new_cap = cap * 2;
                let new_ptr = tx.alloc(
                    list_payload_size(new_cap),
                    Hint::Near(owner_addr),
                    &encode_list(&entries, new_cap),
                )?;
                tx.free(&buf)?;
                hdr.set_edges(dir, EdgeListRef::Inline(new_ptr));
            } else {
                // Spill to the global edge B-tree (§3.2).
                for e in &entries {
                    edge_tree.insert(
                        tx,
                        &tree_key(owner_addr, dir, e.edge_type, e.other),
                        &encode_ptr_value(e.data),
                    )?;
                }
                tx.free(&buf)?;
                hdr.set_edges(dir, EdgeListRef::Tree);
            }
        }
        EdgeListRef::Tree => {
            let key = tree_key(owner_addr, dir, edge.edge_type, edge.other);
            if edge_tree.get(tx, &key)?.is_some() {
                return Err(A1Error::EdgeExists(format!(
                    "type {} {:?} {}",
                    edge.edge_type.0, dir, edge.other
                )));
            }
            edge_tree.insert(tx, &key, &encode_ptr_value(edge.data))?;
        }
    }
    hdr.bump_count(dir, 1);
    Ok(())
}

fn encode_ptr_value(p: Ptr) -> Vec<u8> {
    if p.is_null() {
        Vec::new()
    } else {
        let mut v = Vec::with_capacity(Ptr::ENCODED_LEN);
        p.encode_to(&mut v);
        v
    }
}

/// Remove a half-edge. Returns the removed entry (with its data pointer) or
/// `None` if absent.
pub fn remove_half_edge(
    tx: &mut Txn,
    edge_tree: &BTree,
    owner_addr: Addr,
    hdr: &mut VertexHeader,
    dir: Dir,
    ty: TypeId,
    other: Addr,
) -> A1Result<Option<HalfEdge>> {
    let removed = match hdr.edges(dir) {
        EdgeListRef::Empty => None,
        EdgeListRef::Inline(ptr) => {
            let buf = tx.read(ptr)?;
            let (mut entries, cap) = decode_list(buf.data())?;
            let pos = entries
                .iter()
                .position(|e| e.edge_type == ty && e.other == other);
            match pos {
                Some(i) => {
                    let removed = entries.remove(i);
                    if entries.is_empty() {
                        tx.free(&buf)?;
                        hdr.set_edges(dir, EdgeListRef::Empty);
                    } else {
                        tx.update(&buf, encode_list(&entries, cap))?;
                    }
                    Some(removed)
                }
                None => None,
            }
        }
        EdgeListRef::Tree => {
            let key = tree_key(owner_addr, dir, ty, other);
            edge_tree.remove(tx, &key)?.map(|v| HalfEdge {
                edge_type: ty,
                other,
                data: if v.is_empty() {
                    Ptr::NULL
                } else {
                    Ptr::decode(&v).unwrap_or(Ptr::NULL)
                },
            })
        }
    };
    if removed.is_some() {
        hdr.bump_count(dir, -1);
    }
    Ok(removed)
}

/// Enumerate a vertex's half-edges in one direction, optionally filtered by
/// edge type. For inline lists this is one object read — often a *local*
/// read thanks to co-location (§3.2).
pub fn enumerate(
    tx: &mut Txn,
    edge_tree: &BTree,
    owner_addr: Addr,
    hdr: &VertexHeader,
    dir: Dir,
    ty: Option<TypeId>,
    limit: usize,
) -> A1Result<Vec<HalfEdge>> {
    match hdr.edges(dir) {
        EdgeListRef::Empty => Ok(Vec::new()),
        EdgeListRef::Inline(ptr) => {
            let buf = tx.read(ptr)?;
            let (entries, _) = decode_list(buf.data())?;
            Ok(entries
                .into_iter()
                .filter(|e| ty.is_none_or(|t| e.edge_type == t))
                .take(limit)
                .collect())
        }
        EdgeListRef::Tree => {
            let prefix = match ty {
                Some(t) => tree_prefix_type(owner_addr, dir, t),
                None => tree_prefix_dir(owner_addr, dir),
            };
            edge_tree
                .scan_prefix(tx, &prefix, limit)?
                .into_iter()
                .map(|(k, v)| parse_tree_entry(&k, &v))
                .collect()
        }
    }
}

/// Look up a specific half-edge.
pub fn find_half_edge(
    tx: &mut Txn,
    edge_tree: &BTree,
    owner_addr: Addr,
    hdr: &VertexHeader,
    dir: Dir,
    ty: TypeId,
    other: Addr,
) -> A1Result<Option<HalfEdge>> {
    Ok(
        enumerate(tx, edge_tree, owner_addr, hdr, dir, Some(ty), usize::MAX)?
            .into_iter()
            .find(|e| e.other == other),
    )
}

/// Create a full edge src→dst: an out half-edge at `src` and an in
/// half-edge at `dst`, atomically within the caller's transaction. Handles
/// self-loops (src == dst) on a single header.
pub fn add_edge(
    tx: &mut Txn,
    edge_tree: &BTree,
    cfg: &EdgeConfig,
    src: Addr,
    ty: TypeId,
    dst: Addr,
    data: Ptr,
) -> A1Result<()> {
    let src_buf = tx.read(vertex_ptr(src))?;
    let mut src_hdr = VertexHeader::decode(src_buf.data())?;
    if src == dst {
        insert_half_edge(
            tx,
            edge_tree,
            cfg,
            src,
            &mut src_hdr,
            Dir::Out,
            HalfEdge {
                edge_type: ty,
                other: dst,
                data,
            },
        )?;
        insert_half_edge(
            tx,
            edge_tree,
            cfg,
            src,
            &mut src_hdr,
            Dir::In,
            HalfEdge {
                edge_type: ty,
                other: src,
                data,
            },
        )?;
        tx.update(&src_buf, src_hdr.encode())?;
        return Ok(());
    }
    let dst_buf = tx.read(vertex_ptr(dst))?;
    let mut dst_hdr = VertexHeader::decode(dst_buf.data())?;
    insert_half_edge(
        tx,
        edge_tree,
        cfg,
        src,
        &mut src_hdr,
        Dir::Out,
        HalfEdge {
            edge_type: ty,
            other: dst,
            data,
        },
    )?;
    insert_half_edge(
        tx,
        edge_tree,
        cfg,
        dst,
        &mut dst_hdr,
        Dir::In,
        HalfEdge {
            edge_type: ty,
            other: src,
            data,
        },
    )?;
    tx.update(&src_buf, src_hdr.encode())?;
    tx.update(&dst_buf, dst_hdr.encode())?;
    Ok(())
}

/// Remove a full edge. Returns the edge-data pointer if the edge existed
/// (the caller frees the data object).
pub fn drop_edge(
    tx: &mut Txn,
    edge_tree: &BTree,
    src: Addr,
    ty: TypeId,
    dst: Addr,
) -> A1Result<Option<Ptr>> {
    let src_buf = tx.read(vertex_ptr(src))?;
    let mut src_hdr = VertexHeader::decode(src_buf.data())?;
    if src == dst {
        let out = remove_half_edge(tx, edge_tree, src, &mut src_hdr, Dir::Out, ty, dst)?;
        let _ = remove_half_edge(tx, edge_tree, src, &mut src_hdr, Dir::In, ty, src)?;
        tx.update(&src_buf, src_hdr.encode())?;
        return Ok(out.map(|e| e.data));
    }
    let dst_buf = tx.read(vertex_ptr(dst))?;
    let mut dst_hdr = VertexHeader::decode(dst_buf.data())?;
    let out = remove_half_edge(tx, edge_tree, src, &mut src_hdr, Dir::Out, ty, dst)?;
    let _inn = remove_half_edge(tx, edge_tree, dst, &mut dst_hdr, Dir::In, ty, src)?;
    tx.update(&src_buf, src_hdr.encode())?;
    tx.update(&dst_buf, dst_hdr.encode())?;
    Ok(out.map(|e| e.data))
}

/// Read a vertex header through the storage API (shared helper).
pub fn read_header(tx: &mut Txn, addr: Addr) -> A1Result<(ObjBuf, VertexHeader)> {
    let buf = tx.read(vertex_ptr(addr)).map_err(|e| match e {
        FarmError::NotFound(a) => A1Error::NoSuchVertex(format!("{a}")),
        other => other.into(),
    })?;
    let hdr = VertexHeader::decode(buf.data())?;
    Ok((buf, hdr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use a1_farm::RegionId;

    #[test]
    fn half_edge_roundtrip() {
        let e = HalfEdge {
            edge_type: TypeId(5),
            other: Addr::new(RegionId(3), 192),
            data: Ptr::new(Addr::new(RegionId(3), 256), 40),
        };
        let mut buf = Vec::new();
        e.encode_to(&mut buf);
        assert_eq!(buf.len(), HALF_EDGE_SIZE);
        assert_eq!(HalfEdge::decode(&buf), Some(e));
        assert_eq!(HalfEdge::decode(&buf[..10]), None);
    }

    #[test]
    fn list_roundtrip() {
        let entries: Vec<HalfEdge> = (0..3)
            .map(|i| HalfEdge {
                edge_type: TypeId(i),
                other: Addr::new(RegionId(1), 64 * (i + 1)),
                data: Ptr::NULL,
            })
            .collect();
        let bytes = encode_list(&entries, 4);
        let (back, cap) = decode_list(&bytes).unwrap();
        assert_eq!(back, entries);
        assert_eq!(cap, 4);
        assert!(decode_list(&[1, 0]).is_err());
    }

    #[test]
    fn tree_key_ordering_groups_by_owner_dir_type() {
        let owner = Addr::new(RegionId(1), 64);
        let other1 = Addr::new(RegionId(2), 64);
        let other2 = Addr::new(RegionId(2), 128);
        let k1 = tree_key(owner, Dir::Out, TypeId(1), other1);
        let k2 = tree_key(owner, Dir::Out, TypeId(1), other2);
        let k3 = tree_key(owner, Dir::Out, TypeId(2), other1);
        let k4 = tree_key(owner, Dir::In, TypeId(1), other1);
        assert!(k1 < k2 && k2 < k3, "type-major then other");
        assert!(k3 < k4, "out before in");
        let p = tree_prefix_type(owner, Dir::Out, TypeId(1));
        assert!(k1.starts_with(&p) && k2.starts_with(&p) && !k3.starts_with(&p));
        let pd = tree_prefix_dir(owner, Dir::Out);
        assert!(k3.starts_with(&pd) && !k4.starts_with(&pd));
    }

    #[test]
    fn parse_tree_entry_roundtrip() {
        let owner = Addr::new(RegionId(1), 64);
        let other = Addr::new(RegionId(9), 320);
        let data = Ptr::new(Addr::new(RegionId(9), 640), 77);
        let k = tree_key(owner, Dir::In, TypeId(42), other);
        let e = parse_tree_entry(&k, &encode_ptr_value(data)).unwrap();
        assert_eq!(e.edge_type, TypeId(42));
        assert_eq!(e.other, other);
        assert_eq!(e.data, data);
        let e = parse_tree_entry(&k, &[]).unwrap();
        assert!(e.data.is_null());
        assert!(parse_tree_entry(&k[..10], &[]).is_err());
    }
}
