//! Typed inter-machine message codecs (paper §3.1/§3.4).
//!
//! A1 runs on Bond-serialized messages end to end; this module is the single
//! place where every inter-machine payload — work-op ships, query/page
//! requests, their replies, and mutation/replication-log bodies — is encoded
//! and decoded. Two formats share one vocabulary:
//!
//! * **Binary** (the default): an [`a1_bond::frame`] frame (magic + version +
//!   tag) around a Bond compact-binary record. Nested structures are encoded
//!   records in `Blob` fields; embedded JSON values (predicate literals,
//!   result rows, mutation keys) use a compact tagged binary form
//!   ([`encode_json`]) instead of JSON text.
//! * **Json** ([`WireFormat::Json`]): the legacy text wire, kept as the
//!   external client/debug format and for replaying replication logs written
//!   by older builds.
//!
//! Every decoder auto-detects the format from the first byte (no JSON text
//! starts with the frame magic `0xA1`), so mixed-era logs and mixed-fleet
//! clusters interoperate without negotiation.
//!
//! Errors cross the wire as structured ⟨code, message⟩ pairs ([`ErrCode`]),
//! so classified errors like [`A1Error::ContinuationExpired`] survive the
//! trip instead of being re-derived from message substrings.

use crate::edges::Dir;
use crate::error::{A1Error, A1Result};
use crate::model::TypeId;
use crate::query::exec::{
    CompiledMatch, CompiledStep, CompiledTraverse, QueryMetrics, QueryOutcome, WorkOp, WorkResult,
};
use crate::query::plan::{AttrPredicate, CmpOp, FieldSel, Select};
use a1_bond::frame::{self, MsgTag};
use a1_bond::wire::{read_varint, unzigzag, write_varint, zigzag, WireError};
use a1_bond::{Record, Value};
use a1_farm::Addr;
use a1_json::Json;

pub use a1_bond::frame::{is_binary, WireFormat};

// ---------------------------------------------------------------- json binary

const J_NULL: u8 = 0x00;
const J_FALSE: u8 = 0x01;
const J_TRUE: u8 = 0x02;
const J_INT: u8 = 0x03;
const J_DOUBLE: u8 = 0x04;
const J_STR: u8 = 0x05;
const J_ARR: u8 = 0x06;
const J_OBJ: u8 = 0x07;
/// Back-reference to an earlier string in the same encoded value (dictionary
/// encoding): object keys and string values repeat heavily across result
/// rows, so each top-level encode carries every distinct string once.
const J_STRREF: u8 = 0x08;

/// Largest magnitude at which every integer is exactly representable as f64;
/// integral numbers in this range take the varint fast path.
const J_INT_MAX: f64 = 9_007_199_254_740_992.0; // 2^53

/// Append a compact tagged binary encoding of a JSON value. Integral numbers
/// become zigzag varints (addresses, counts and timestamps dominate A1's
/// payloads); repeated strings — object keys above all — become dictionary
/// back-references; everything else is a tag plus the natural binary form.
///
/// One `encode_json` call is one dictionary scope: decode the result with a
/// single [`decode_json`] call over the same bytes.
pub fn encode_json(j: &Json, out: &mut Vec<u8>) {
    let mut table: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    enc_json(j, out, &mut table);
}

fn enc_str(s: &str, out: &mut Vec<u8>, table: &mut std::collections::HashMap<String, u64>) {
    if let Some(&idx) = table.get(s) {
        out.push(J_STRREF);
        write_varint(out, idx);
        return;
    }
    out.push(J_STR);
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
    let idx = table.len() as u64;
    table.insert(s.to_string(), idx);
}

fn enc_json(j: &Json, out: &mut Vec<u8>, table: &mut std::collections::HashMap<String, u64>) {
    match j {
        Json::Null => out.push(J_NULL),
        Json::Bool(false) => out.push(J_FALSE),
        Json::Bool(true) => out.push(J_TRUE),
        Json::Num(n) => {
            if n.is_finite() && n.fract() == 0.0 && n.abs() < J_INT_MAX {
                out.push(J_INT);
                write_varint(out, zigzag(*n as i64));
            } else {
                out.push(J_DOUBLE);
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
        Json::Str(s) => enc_str(s, out, table),
        Json::Arr(items) => {
            out.push(J_ARR);
            write_varint(out, items.len() as u64);
            for item in items {
                enc_json(item, out, table);
            }
        }
        Json::Obj(pairs) => {
            out.push(J_OBJ);
            write_varint(out, pairs.len() as u64);
            for (k, v) in pairs {
                enc_str(k, out, table);
                enc_json(v, out, table);
            }
        }
    }
}

/// Decode one JSON value from `buf` at `pos` (the scope of one
/// [`encode_json`] call).
pub fn decode_json(buf: &[u8], pos: &mut usize) -> Result<Json, WireError> {
    let mut table: Vec<String> = Vec::new();
    dec_json(buf, pos, &mut table, 0)
}

fn dec_str(buf: &[u8], pos: &mut usize, table: &mut Vec<String>) -> Result<String, WireError> {
    let tag = *buf.get(*pos).ok_or(WireError::Truncated)?;
    *pos += 1;
    match tag {
        J_STR => read_str(buf, pos, table),
        J_STRREF => {
            let idx = read_varint(buf, pos)? as usize;
            table
                .get(idx)
                .cloned()
                .ok_or(WireError::InvalidTag(J_STRREF))
        }
        other => Err(WireError::InvalidTag(other)),
    }
}

fn dec_json(
    buf: &[u8],
    pos: &mut usize,
    table: &mut Vec<String>,
    depth: u32,
) -> Result<Json, WireError> {
    // Same recursion bound as the JSON text parser: hostile nesting must
    // error, never overflow the stack.
    if depth > a1_bond::wire::MAX_DEPTH {
        return Err(WireError::TooDeep);
    }
    let tag = *buf.get(*pos).ok_or(WireError::Truncated)?;
    *pos += 1;
    Ok(match tag {
        J_NULL => Json::Null,
        J_FALSE => Json::Bool(false),
        J_TRUE => Json::Bool(true),
        J_INT => Json::Num(unzigzag(read_varint(buf, pos)?) as f64),
        J_DOUBLE => {
            let end = pos.checked_add(8).ok_or(WireError::Truncated)?;
            let bytes = buf.get(*pos..end).ok_or(WireError::Truncated)?;
            *pos = end;
            Json::Num(f64::from_le_bytes(bytes.try_into().expect("8 bytes")))
        }
        J_STR => Json::Str(read_str(buf, pos, table)?),
        J_STRREF => {
            let idx = read_varint(buf, pos)? as usize;
            Json::Str(
                table
                    .get(idx)
                    .cloned()
                    .ok_or(WireError::InvalidTag(J_STRREF))?,
            )
        }
        J_ARR => {
            let n = read_varint(buf, pos)? as usize;
            // Hostile-length guard: each element takes ≥1 byte.
            if n > buf.len().saturating_sub(*pos) {
                return Err(WireError::Truncated);
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(dec_json(buf, pos, table, depth + 1)?);
            }
            Json::Arr(items)
        }
        J_OBJ => {
            let n = read_varint(buf, pos)? as usize;
            // Each pair takes ≥2 bytes (key tag + value tag).
            if n > buf.len().saturating_sub(*pos) / 2 {
                return Err(WireError::Truncated);
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let k = dec_str(buf, pos, table)?;
                let v = dec_json(buf, pos, table, depth + 1)?;
                pairs.push((k, v));
            }
            Json::Obj(pairs)
        }
        other => return Err(WireError::InvalidTag(other)),
    })
}

fn read_str(buf: &[u8], pos: &mut usize, table: &mut Vec<String>) -> Result<String, WireError> {
    let len = read_varint(buf, pos)? as usize;
    let end = pos.checked_add(len).ok_or(WireError::Truncated)?;
    let bytes = buf.get(*pos..end).ok_or(WireError::Truncated)?;
    *pos = end;
    let s = std::str::from_utf8(bytes)
        .map_err(|_| WireError::InvalidUtf8)?
        .to_string();
    table.push(s.clone());
    Ok(s)
}

fn json_blob(j: &Json) -> Value {
    let mut out = Vec::new();
    encode_json(j, &mut out);
    Value::Blob(out)
}

/// Encode a row set as one JSON array *by reference* — byte-identical to
/// `json_blob(&Json::Arr(rows.to_vec()))` but without cloning the rows, and
/// with the dictionary table shared across all of them.
fn json_rows_blob<'a>(rows: impl ExactSizeIterator<Item = &'a Json>) -> Value {
    let mut out = Vec::new();
    let mut table: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    out.push(J_ARR);
    write_varint(&mut out, rows.len() as u64);
    for row in rows {
        enc_json(row, &mut out, &mut table);
    }
    Value::Blob(out)
}

fn json_from_blob(b: &[u8]) -> A1Result<Json> {
    let mut pos = 0;
    let j = decode_json(b, &mut pos).map_err(wire_err)?;
    if pos != b.len() {
        return Err(wire_err(WireError::TrailingBytes));
    }
    Ok(j)
}

fn wire_err(e: WireError) -> A1Error {
    A1Error::Internal(format!("wire: {e}"))
}

fn bad(what: &str) -> A1Error {
    A1Error::Internal(format!("bad wire message: {what}"))
}

// -------------------------------------------------------------- error codes

/// Structured wire error codes. Classified errors clients (and the
/// coordinator's ship path) branch on keep their identity across machines;
/// everything else degrades to `Internal` with the message preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum ErrCode {
    Query = 1,
    Internal = 2,
    WorkingSetExceeded = 3,
    ContinuationExpired = 4,
    Schema = 5,
    Overloaded = 6,
}

fn error_parts(e: &A1Error) -> (ErrCode, String, u64) {
    match e {
        A1Error::Query(m) => (ErrCode::Query, m.clone(), 0),
        A1Error::Schema(m) => (ErrCode::Schema, m.clone(), 0),
        A1Error::WorkingSetExceeded { limit } => {
            (ErrCode::WorkingSetExceeded, e.to_string(), *limit as u64)
        }
        A1Error::ContinuationExpired => (ErrCode::ContinuationExpired, e.to_string(), 0),
        // Reuses the numeric side channel (EF_LIMIT / "limit") for the
        // retry-after hint, milliseconds.
        A1Error::Overloaded { retry_after_ms } => {
            (ErrCode::Overloaded, e.to_string(), *retry_after_ms)
        }
        A1Error::Internal(m) => (ErrCode::Internal, m.clone(), 0),
        other => (ErrCode::Internal, other.to_string(), 0),
    }
}

fn error_from_parts(code: u64, msg: String, limit: u64) -> A1Error {
    match code {
        c if c == ErrCode::Query as u64 => A1Error::Query(msg),
        c if c == ErrCode::Schema as u64 => A1Error::Schema(msg),
        c if c == ErrCode::WorkingSetExceeded as u64 => A1Error::WorkingSetExceeded {
            limit: limit as usize,
        },
        c if c == ErrCode::ContinuationExpired as u64 => A1Error::ContinuationExpired,
        c if c == ErrCode::Overloaded as u64 => A1Error::Overloaded {
            retry_after_ms: limit,
        },
        _ => A1Error::Internal(msg),
    }
}

const EF_CODE: u16 = 0;
const EF_MSG: u16 = 1;
const EF_LIMIT: u16 = 2;

fn error_frame(e: &A1Error) -> Vec<u8> {
    let (code, msg, limit) = error_parts(e);
    let mut rec = Record::new()
        .with(EF_CODE, Value::UInt64(code as u64))
        .with(EF_MSG, Value::String(msg));
    if limit != 0 {
        rec.set(EF_LIMIT, Value::UInt64(limit));
    }
    frame::frame(MsgTag::Error, &rec)
}

fn error_from_record(rec: &Record) -> A1Error {
    error_from_parts(
        rec_u64(rec, EF_CODE).unwrap_or(ErrCode::Internal as u64),
        rec_str(rec, EF_MSG).unwrap_or_else(|| "unknown error".into()),
        rec_u64(rec, EF_LIMIT).unwrap_or(0),
    )
}

fn error_to_json(e: &A1Error) -> Json {
    let (code, msg, limit) = error_parts(e);
    let mut fields = vec![
        ("t".to_string(), Json::str("err")),
        ("code".to_string(), Json::Num(code as u32 as f64)),
        ("msg".to_string(), Json::Str(msg)),
    ];
    if limit != 0 {
        fields.push(("limit".to_string(), Json::Num(limit as f64)));
    }
    Json::Obj(fields)
}

fn error_from_json(j: &Json) -> A1Error {
    let msg = j
        .get("msg")
        .and_then(Json::as_str)
        .unwrap_or("unknown error")
        .to_string();
    match j.get("code").and_then(Json::as_f64) {
        Some(code) => error_from_parts(
            code as u64,
            msg,
            j.get("limit").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        ),
        // Pre-binary builds sent bare `{"t":"err","msg":…}`: fall back to
        // re-classifying from the message text.
        None => {
            if msg.contains("fast-fail") {
                A1Error::WorkingSetExceeded { limit: 0 }
            } else if msg.contains("continuation") {
                A1Error::ContinuationExpired
            } else {
                A1Error::Query(msg)
            }
        }
    }
}

/// Encode an error reply in the requested format (used when a request cannot
/// even be decoded, e.g. the cluster is shutting down).
pub fn encode_error(e: &A1Error, fmt: WireFormat) -> Vec<u8> {
    match fmt {
        WireFormat::Binary => error_frame(e),
        WireFormat::Json => error_to_json(e).to_string().into_bytes(),
    }
}

// ----------------------------------------------------------- record helpers

fn rec_str(rec: &Record, id: u16) -> Option<String> {
    match rec.get(id) {
        Some(Value::String(s)) => Some(s.clone()),
        _ => None,
    }
}

fn rec_u64(rec: &Record, id: u16) -> Option<u64> {
    match rec.get(id) {
        Some(Value::UInt64(v)) => Some(*v),
        _ => None,
    }
}

fn rec_bool(rec: &Record, id: u16) -> Option<bool> {
    match rec.get(id) {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}

fn rec_blob(rec: &Record, id: u16) -> Option<&[u8]> {
    match rec.get(id) {
        Some(Value::Blob(b)) => Some(b),
        _ => None,
    }
}

fn rec_sub(rec: &Record, id: u16) -> A1Result<Option<Record>> {
    match rec.get(id) {
        Some(Value::Blob(b)) => Ok(Some(a1_bond::decode_record(b).map_err(wire_err)?)),
        Some(_) => Err(bad("nested record")),
        None => Ok(None),
    }
}

fn sub_blob(rec: &Record) -> Value {
    Value::Blob(a1_bond::encode_record(rec))
}

/// Addresses pack as concatenated varints in one blob: no per-element tag,
/// and small region offsets stay small on the wire.
fn addrs_to_value(addrs: &[Addr]) -> Value {
    let mut out = Vec::with_capacity(addrs.len() * 4);
    for a in addrs {
        write_varint(&mut out, a.raw());
    }
    Value::Blob(out)
}

fn addrs_from_blob(b: &[u8]) -> A1Result<Vec<Addr>> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < b.len() {
        out.push(Addr::from_raw(read_varint(b, &mut pos).map_err(wire_err)?));
    }
    Ok(out)
}

// ----------------------------------------------------------- work op binary

const WO_TENANT: u16 = 0;
const WO_GRAPH: u16 = 1;
const WO_TS: u16 = 2;
const WO_VERTICES: u16 = 3;
const WO_STEP: u16 = 4;
const WO_EMIT_ROWS: u16 = 5;
const WO_SELECT: u16 = 6;
/// Read-cache bypass flag, encoded only when set (absent ⇒ false, so old
/// peers decode new frames and vice versa).
const WO_CACHE_BYPASS: u16 = 7;

const ST_TYPE_FILTER: u16 = 0;
const ST_ID_FILTER: u16 = 1;
const ST_PREDS: u16 = 2;
const ST_MATCHES: u16 = 3;
const ST_TRAVERSE: u16 = 4;

const PR_ATTR: u16 = 0;
const PR_MAP_KEY: u16 = 1;
const PR_OP: u16 = 2;
const PR_VALUE: u16 = 3;

const MA_DIR: u16 = 0;
const MA_EDGE_TYPE: u16 = 1;
const MA_TARGET: u16 = 2;
const MA_TARGET_TYPE: u16 = 3;
const MA_PREDS: u16 = 4;

const TR_DIR: u16 = 0;
const TR_EDGE_TYPE: u16 = 1;
const TR_PREDS: u16 = 2;

const SEL_KIND: u16 = 0;
const SEL_FIELDS: u16 = 1;

fn cmp_code(op: CmpOp) -> u64 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Gt => 2,
        CmpOp::Ge => 3,
        CmpOp::Lt => 4,
        CmpOp::Le => 5,
    }
}

fn cmp_from_code(c: u64) -> A1Result<CmpOp> {
    Ok(match c {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        4 => CmpOp::Lt,
        5 => CmpOp::Le,
        _ => return Err(bad("cmp op")),
    })
}

fn dir_code(d: Dir) -> u64 {
    if d == Dir::In {
        1
    } else {
        0
    }
}

fn dir_from_code(c: u64) -> Dir {
    if c == 1 {
        Dir::In
    } else {
        Dir::Out
    }
}

fn pred_to_record(p: &AttrPredicate) -> Record {
    let mut rec = Record::new().with(PR_ATTR, Value::String(p.attr.clone()));
    if let Some(k) = &p.map_key {
        rec.set(PR_MAP_KEY, Value::String(k.clone()));
    }
    rec.set(PR_OP, Value::UInt64(cmp_code(p.op)));
    rec.set(PR_VALUE, json_blob(&p.value));
    rec
}

fn pred_from_record(rec: &Record) -> A1Result<AttrPredicate> {
    Ok(AttrPredicate {
        attr: rec_str(rec, PR_ATTR).ok_or_else(|| bad("pred attr"))?,
        map_key: rec_str(rec, PR_MAP_KEY),
        op: cmp_from_code(rec_u64(rec, PR_OP).ok_or_else(|| bad("pred op"))?)?,
        value: json_from_blob(rec_blob(rec, PR_VALUE).ok_or_else(|| bad("pred value"))?)?,
    })
}

fn preds_to_value(preds: &[AttrPredicate]) -> Value {
    Value::List(preds.iter().map(|p| sub_blob(&pred_to_record(p))).collect())
}

fn preds_from_value(rec: &Record, id: u16) -> A1Result<Vec<AttrPredicate>> {
    let Some(Value::List(items)) = rec.get(id) else {
        return Ok(Vec::new());
    };
    items
        .iter()
        .map(|item| match item {
            Value::Blob(b) => pred_from_record(&a1_bond::decode_record(b).map_err(wire_err)?),
            _ => Err(bad("pred list")),
        })
        .collect()
}

fn step_to_record(s: &CompiledStep) -> Record {
    let mut rec = Record::new();
    if let Some(t) = s.type_filter {
        rec.set(ST_TYPE_FILTER, Value::UInt64(t.0 as u64));
    }
    if let Some(a) = s.id_filter {
        rec.set(ST_ID_FILTER, Value::UInt64(a.raw()));
    }
    if !s.preds.is_empty() {
        rec.set(ST_PREDS, preds_to_value(&s.preds));
    }
    if !s.matches.is_empty() {
        rec.set(
            ST_MATCHES,
            Value::List(
                s.matches
                    .iter()
                    .map(|m| {
                        let mut mr = Record::new()
                            .with(MA_DIR, Value::UInt64(dir_code(m.dir)))
                            .with(MA_EDGE_TYPE, Value::UInt64(m.edge_type.0 as u64));
                        if let Some(t) = m.target {
                            mr.set(MA_TARGET, Value::UInt64(t.raw()));
                        }
                        if let Some(tt) = m.target_type {
                            mr.set(MA_TARGET_TYPE, Value::UInt64(tt.0 as u64));
                        }
                        if !m.preds.is_empty() {
                            mr.set(MA_PREDS, preds_to_value(&m.preds));
                        }
                        sub_blob(&mr)
                    })
                    .collect(),
            ),
        );
    }
    if let Some(t) = &s.traverse {
        let mut tr = Record::new()
            .with(TR_DIR, Value::UInt64(dir_code(t.dir)))
            .with(TR_EDGE_TYPE, Value::UInt64(t.edge_type.0 as u64));
        if !t.edge_preds.is_empty() {
            tr.set(TR_PREDS, preds_to_value(&t.edge_preds));
        }
        rec.set(ST_TRAVERSE, sub_blob(&tr));
    }
    rec
}

fn step_from_record(rec: &Record) -> A1Result<CompiledStep> {
    let matches = match rec.get(ST_MATCHES) {
        Some(Value::List(items)) => items
            .iter()
            .map(|item| {
                let Value::Blob(b) = item else {
                    return Err(bad("match list"));
                };
                let mr = a1_bond::decode_record(b).map_err(wire_err)?;
                Ok(CompiledMatch {
                    dir: dir_from_code(rec_u64(&mr, MA_DIR).unwrap_or(0)),
                    edge_type: TypeId(rec_u64(&mr, MA_EDGE_TYPE).unwrap_or(0) as u32),
                    target: rec_u64(&mr, MA_TARGET).map(Addr::from_raw),
                    target_type: rec_u64(&mr, MA_TARGET_TYPE).map(|t| TypeId(t as u32)),
                    preds: preds_from_value(&mr, MA_PREDS)?,
                })
            })
            .collect::<A1Result<Vec<_>>>()?,
        _ => Vec::new(),
    };
    let traverse = match rec_sub(rec, ST_TRAVERSE)? {
        Some(tr) => Some(CompiledTraverse {
            dir: dir_from_code(rec_u64(&tr, TR_DIR).unwrap_or(0)),
            edge_type: TypeId(rec_u64(&tr, TR_EDGE_TYPE).unwrap_or(0) as u32),
            edge_preds: preds_from_value(&tr, TR_PREDS)?,
        }),
        None => None,
    };
    Ok(CompiledStep {
        type_filter: rec_u64(rec, ST_TYPE_FILTER).map(|t| TypeId(t as u32)),
        id_filter: rec_u64(rec, ST_ID_FILTER).map(Addr::from_raw),
        preds: preds_from_value(rec, ST_PREDS)?,
        matches,
        traverse,
    })
}

fn select_to_record(s: &Select) -> Record {
    match s {
        Select::All => Record::new().with(SEL_KIND, Value::UInt64(0)),
        Select::Count => Record::new().with(SEL_KIND, Value::UInt64(1)),
        Select::Fields(fields) => Record::new().with(SEL_KIND, Value::UInt64(2)).with(
            SEL_FIELDS,
            Value::List(
                fields
                    .iter()
                    .map(|f| Value::String(field_sel_str(f)))
                    .collect(),
            ),
        ),
    }
}

fn select_from_record(rec: &Record) -> Select {
    match rec_u64(rec, SEL_KIND) {
        Some(1) => Select::Count,
        Some(2) => {
            let fields = match rec.get(SEL_FIELDS) {
                Some(Value::List(items)) => items
                    .iter()
                    .filter_map(|v| v.as_str())
                    .map(parse_field_sel)
                    .collect(),
                _ => Vec::new(),
            };
            Select::Fields(fields)
        }
        _ => Select::All,
    }
}

fn field_sel_str(f: &FieldSel) -> String {
    match f.index {
        Some(i) => format!("{}[{}]", f.attr, i),
        None => f.attr.clone(),
    }
}

fn parse_field_sel(s: &str) -> FieldSel {
    match s.find('[') {
        Some(open) if s.ends_with(']') => FieldSel {
            attr: s[..open].to_string(),
            index: s[open + 1..s.len() - 1].parse().ok(),
        },
        _ => FieldSel {
            attr: s.to_string(),
            index: None,
        },
    }
}

fn work_op_to_record(op: &WorkOp) -> Record {
    let mut rec = Record::new()
        .with(WO_TENANT, Value::String(op.tenant.clone()))
        .with(WO_GRAPH, Value::String(op.graph.clone()))
        .with(WO_TS, Value::UInt64(op.snapshot_ts))
        .with(WO_VERTICES, addrs_to_value(&op.vertices))
        .with(WO_STEP, sub_blob(&step_to_record(&op.step)))
        .with(WO_EMIT_ROWS, Value::Bool(op.emit_rows))
        .with(WO_SELECT, sub_blob(&select_to_record(&op.select)));
    if op.cache_bypass {
        rec.set(WO_CACHE_BYPASS, Value::Bool(true));
    }
    rec
}

fn work_op_from_record(rec: &Record) -> A1Result<WorkOp> {
    Ok(WorkOp {
        tenant: rec_str(rec, WO_TENANT).ok_or_else(|| bad("work op tenant"))?,
        graph: rec_str(rec, WO_GRAPH).ok_or_else(|| bad("work op graph"))?,
        snapshot_ts: rec_u64(rec, WO_TS).ok_or_else(|| bad("work op ts"))?,
        vertices: addrs_from_blob(
            rec_blob(rec, WO_VERTICES).ok_or_else(|| bad("work op vertices"))?,
        )?,
        step: step_from_record(&rec_sub(rec, WO_STEP)?.ok_or_else(|| bad("work op step"))?)?,
        emit_rows: rec_bool(rec, WO_EMIT_ROWS).unwrap_or(false),
        select: rec_sub(rec, WO_SELECT)?
            .map(|r| select_from_record(&r))
            .unwrap_or(Select::All),
        cache_bypass: rec_bool(rec, WO_CACHE_BYPASS).unwrap_or(false),
    })
}

// ------------------------------------------------------- work result binary

const WR_NEXT: u16 = 0;
/// Row addresses, packed varints (parallel to [`WR_ROW_DATA`]).
const WR_ROW_ADDRS: u16 = 1;
/// Row payloads: ONE encoded JSON array, so the dictionary table is shared
/// across every row (column names and repeated values encode once).
const WR_ROW_DATA: u16 = 2;
const WR_VR: u16 = 3;
const WR_EV: u16 = 4;
const WR_LR: u16 = 5;
const WR_RR: u16 = 6;
const WR_MORSELS: u16 = 7;
const WR_PEAK_MORSELS: u16 = 8;
const WR_CACHE_HITS: u16 = 9;
const WR_CACHE_MISSES: u16 = 10;
const WR_FETCH_VERBS: u16 = 11;

fn work_result_to_record(r: &WorkResult) -> Record {
    let mut rec = Record::new().with(WR_NEXT, addrs_to_value(&r.next));
    if !r.rows.is_empty() {
        let addrs: Vec<Addr> = r.rows.iter().map(|(a, _)| *a).collect();
        rec.set(WR_ROW_ADDRS, addrs_to_value(&addrs));
        rec.set(
            WR_ROW_DATA,
            json_rows_blob(r.rows.iter().map(|(_, row)| row)),
        );
    }
    rec.set(WR_VR, Value::UInt64(r.metrics.vertices_read));
    rec.set(WR_EV, Value::UInt64(r.metrics.edges_visited));
    rec.set(WR_LR, Value::UInt64(r.metrics.local_reads));
    rec.set(WR_RR, Value::UInt64(r.metrics.remote_reads));
    rec.set(WR_MORSELS, Value::UInt64(r.morsels));
    rec.set(WR_PEAK_MORSELS, Value::UInt64(r.max_concurrent_morsels));
    if r.metrics.cache_hits != 0 {
        rec.set(WR_CACHE_HITS, Value::UInt64(r.metrics.cache_hits));
    }
    if r.metrics.cache_misses != 0 {
        rec.set(WR_CACHE_MISSES, Value::UInt64(r.metrics.cache_misses));
    }
    if r.metrics.fetch_verbs != 0 {
        rec.set(WR_FETCH_VERBS, Value::UInt64(r.metrics.fetch_verbs));
    }
    rec
}

fn work_result_from_record(rec: &Record) -> A1Result<WorkResult> {
    let rows = match (rec_blob(rec, WR_ROW_ADDRS), rec_blob(rec, WR_ROW_DATA)) {
        (Some(addrs), Some(data)) => {
            let addrs = addrs_from_blob(addrs)?;
            let Json::Arr(rows) = json_from_blob(data)? else {
                return Err(bad("row data"));
            };
            if addrs.len() != rows.len() {
                return Err(bad("row addr/data length mismatch"));
            }
            addrs.into_iter().zip(rows).collect()
        }
        (None, None) => Vec::new(),
        _ => return Err(bad("row addr/data pairing")),
    };
    Ok(WorkResult {
        next: addrs_from_blob(rec_blob(rec, WR_NEXT).unwrap_or(&[]))?,
        rows,
        metrics: QueryMetrics {
            vertices_read: rec_u64(rec, WR_VR).unwrap_or(0),
            edges_visited: rec_u64(rec, WR_EV).unwrap_or(0),
            local_reads: rec_u64(rec, WR_LR).unwrap_or(0),
            remote_reads: rec_u64(rec, WR_RR).unwrap_or(0),
            cache_hits: rec_u64(rec, WR_CACHE_HITS).unwrap_or(0),
            cache_misses: rec_u64(rec, WR_CACHE_MISSES).unwrap_or(0),
            fetch_verbs: rec_u64(rec, WR_FETCH_VERBS).unwrap_or(0),
            ..QueryMetrics::default()
        },
        morsels: rec_u64(rec, WR_MORSELS).unwrap_or(0),
        max_concurrent_morsels: rec_u64(rec, WR_PEAK_MORSELS).unwrap_or(0),
    })
}

// ---------------------------------------------------------- outcome binary

const OC_ROWS: u16 = 0;
const OC_COUNT: u16 = 1;
const OC_CONT: u16 = 2;
const OC_METRICS: u16 = 3;

const QM_TS: u16 = 0;
const QM_HOPS: u16 = 1;
const QM_VR: u16 = 2;
const QM_EV: u16 = 3;
const QM_LR: u16 = 4;
const QM_RR: u16 = 5;
const QM_RPCS: u16 = 6;
const QM_REQ_BYTES: u16 = 7;
const QM_REPLY_BYTES: u16 = 8;
const QM_CACHE_HITS: u16 = 9;
const QM_CACHE_MISSES: u16 = 10;
const QM_FETCH_VERBS: u16 = 11;

fn metrics_to_record(m: &QueryMetrics) -> Record {
    Record::new()
        .with(QM_TS, Value::UInt64(m.snapshot_ts))
        .with(QM_HOPS, Value::UInt64(m.hops as u64))
        .with(QM_VR, Value::UInt64(m.vertices_read))
        .with(QM_EV, Value::UInt64(m.edges_visited))
        .with(QM_LR, Value::UInt64(m.local_reads))
        .with(QM_RR, Value::UInt64(m.remote_reads))
        .with(QM_RPCS, Value::UInt64(m.rpcs))
        .with(QM_REQ_BYTES, Value::UInt64(m.rpc_req_bytes))
        .with(QM_REPLY_BYTES, Value::UInt64(m.rpc_reply_bytes))
        .with(QM_CACHE_HITS, Value::UInt64(m.cache_hits))
        .with(QM_CACHE_MISSES, Value::UInt64(m.cache_misses))
        .with(QM_FETCH_VERBS, Value::UInt64(m.fetch_verbs))
}

fn metrics_from_record(rec: &Record) -> QueryMetrics {
    QueryMetrics {
        snapshot_ts: rec_u64(rec, QM_TS).unwrap_or(0),
        hops: rec_u64(rec, QM_HOPS).unwrap_or(0) as u32,
        vertices_read: rec_u64(rec, QM_VR).unwrap_or(0),
        edges_visited: rec_u64(rec, QM_EV).unwrap_or(0),
        local_reads: rec_u64(rec, QM_LR).unwrap_or(0),
        remote_reads: rec_u64(rec, QM_RR).unwrap_or(0),
        rpcs: rec_u64(rec, QM_RPCS).unwrap_or(0),
        rpc_req_bytes: rec_u64(rec, QM_REQ_BYTES).unwrap_or(0),
        rpc_reply_bytes: rec_u64(rec, QM_REPLY_BYTES).unwrap_or(0),
        cache_hits: rec_u64(rec, QM_CACHE_HITS).unwrap_or(0),
        cache_misses: rec_u64(rec, QM_CACHE_MISSES).unwrap_or(0),
        fetch_verbs: rec_u64(rec, QM_FETCH_VERBS).unwrap_or(0),
    }
}

fn outcome_to_record(o: &QueryOutcome) -> Record {
    let mut rec = Record::new();
    if !o.rows.is_empty() {
        // One encoded array: the dictionary table spans all rows.
        rec.set(OC_ROWS, json_rows_blob(o.rows.iter()));
    }
    if let Some(c) = o.count {
        rec.set(OC_COUNT, Value::UInt64(c));
    }
    if let Some(c) = &o.continuation {
        rec.set(OC_CONT, Value::String(c.clone()));
    }
    rec.set(OC_METRICS, sub_blob(&metrics_to_record(&o.metrics)));
    rec
}

fn outcome_from_record(rec: &Record) -> A1Result<QueryOutcome> {
    let rows = match rec_blob(rec, OC_ROWS) {
        Some(b) => {
            let Json::Arr(rows) = json_from_blob(b)? else {
                return Err(bad("outcome rows"));
            };
            rows
        }
        None => Vec::new(),
    };
    Ok(QueryOutcome {
        rows,
        count: rec_u64(rec, OC_COUNT),
        continuation: rec_str(rec, OC_CONT),
        metrics: rec_sub(rec, OC_METRICS)?
            .map(|r| metrics_from_record(&r))
            .unwrap_or_default(),
        per_hop: Vec::new(),
    })
}

// ---------------------------------------------------------- request binary

const QR_TENANT: u16 = 0;
const QR_GRAPH: u16 = 1;
const QR_TEXT: u16 = 2;
const QR_CLIENT: u16 = 3;

const PG_CID: u16 = 0;
const PG_CLIENT: u16 = 1;

/// A decoded RPC request (the server dispatches on this).
///
/// `client` identifies the caller for the front door's per-client quotas;
/// empty means anonymous (all anonymous callers share one bucket). Absent on
/// the wire when empty, so pre-quota frames decode unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Work(WorkOp),
    Query {
        tenant: String,
        graph: String,
        q: String,
        client: String,
    },
    Page {
        cid: u64,
        client: String,
    },
}

/// Which format a request (or reply) arrived in — replies mirror it.
pub fn payload_format(payload: &[u8]) -> WireFormat {
    if is_binary(payload) {
        WireFormat::Binary
    } else {
        WireFormat::Json
    }
}

/// Decode any RPC request, auto-detecting the format.
pub fn decode_request(payload: &[u8]) -> A1Result<Request> {
    if is_binary(payload) {
        let (tag, rec) = frame::unframe(payload).map_err(wire_err)?;
        return match tag {
            MsgTag::WorkOp => Ok(Request::Work(work_op_from_record(&rec)?)),
            MsgTag::Query => Ok(Request::Query {
                tenant: rec_str(&rec, QR_TENANT).ok_or_else(|| bad("query tenant"))?,
                graph: rec_str(&rec, QR_GRAPH).ok_or_else(|| bad("query graph"))?,
                q: rec_str(&rec, QR_TEXT).ok_or_else(|| bad("query text"))?,
                client: rec_str(&rec, QR_CLIENT).unwrap_or_default(),
            }),
            MsgTag::Page => Ok(Request::Page {
                cid: rec_u64(&rec, PG_CID).ok_or_else(|| bad("page cid"))?,
                client: rec_str(&rec, PG_CLIENT).unwrap_or_default(),
            }),
            other => Err(bad(&format!("unexpected request tag {other:?}"))),
        };
    }
    let text =
        std::str::from_utf8(payload).map_err(|_| A1Error::Internal("rpc not utf-8".into()))?;
    let j = Json::parse(text).map_err(|e| A1Error::Internal(e.to_string()))?;
    match j.get("t").and_then(Json::as_str) {
        Some("work") => Ok(Request::Work(work_op_from_json(&j)?)),
        Some("query") => {
            let s = |k: &str| {
                j.get(k)
                    .and_then(Json::as_str)
                    .map(String::from)
                    .ok_or_else(|| A1Error::Query(format!("missing {k}")))
            };
            Ok(Request::Query {
                tenant: s("tenant")?,
                graph: s("graph")?,
                q: s("q")?,
                client: s("client").unwrap_or_default(),
            })
        }
        Some("page") => Ok(Request::Page {
            cid: j
                .get("cid")
                .and_then(Json::as_f64)
                .ok_or(A1Error::ContinuationExpired)? as u64,
            client: j
                .get("client")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        }),
        _ => Err(A1Error::Query("unknown rpc".into())),
    }
}

/// Encode a work-op ship in the given format.
pub fn encode_work_op(op: &WorkOp, fmt: WireFormat) -> Vec<u8> {
    match fmt {
        WireFormat::Binary => frame::frame(MsgTag::WorkOp, &work_op_to_record(op)),
        WireFormat::Json => work_op_to_json(op).to_string().into_bytes(),
    }
}

/// Encode a query request. `client` tags the caller for per-client quotas;
/// empty (anonymous) is omitted from the wire.
pub fn encode_query_request(
    tenant: &str,
    graph: &str,
    q: &str,
    client: &str,
    fmt: WireFormat,
) -> Vec<u8> {
    match fmt {
        WireFormat::Binary => {
            let mut rec = Record::new()
                .with(QR_TENANT, Value::String(tenant.into()))
                .with(QR_GRAPH, Value::String(graph.into()))
                .with(QR_TEXT, Value::String(q.into()));
            if !client.is_empty() {
                rec.set(QR_CLIENT, Value::String(client.into()));
            }
            frame::frame(MsgTag::Query, &rec)
        }
        WireFormat::Json => {
            let mut fields = vec![
                ("t", Json::str("query")),
                ("tenant", Json::str(tenant)),
                ("graph", Json::str(graph)),
                ("q", Json::str(q)),
            ];
            if !client.is_empty() {
                fields.push(("client", Json::str(client)));
            }
            Json::obj(fields).to_string().into_bytes()
        }
    }
}

/// Encode a continuation-page request.
pub fn encode_page_request(cid: u64, client: &str, fmt: WireFormat) -> Vec<u8> {
    match fmt {
        WireFormat::Binary => {
            let mut rec = Record::new().with(PG_CID, Value::UInt64(cid));
            if !client.is_empty() {
                rec.set(PG_CLIENT, Value::String(client.into()));
            }
            frame::frame(MsgTag::Page, &rec)
        }
        WireFormat::Json => {
            let mut fields = vec![("t", Json::str("page")), ("cid", Json::Num(cid as f64))];
            if !client.is_empty() {
                fields.push(("client", Json::str(client)));
            }
            Json::obj(fields).to_string().into_bytes()
        }
    }
}

/// Encode a worker's reply.
pub fn encode_work_result(r: &A1Result<WorkResult>, fmt: WireFormat) -> Vec<u8> {
    match (r, fmt) {
        (Ok(res), WireFormat::Binary) => {
            frame::frame(MsgTag::WorkResult, &work_result_to_record(res))
        }
        (Err(e), WireFormat::Binary) => error_frame(e),
        (_, WireFormat::Json) => work_result_to_json(r).to_string().into_bytes(),
    }
}

/// Decode a worker's reply, auto-detecting the format.
pub fn decode_work_result(payload: &[u8]) -> A1Result<WorkResult> {
    if is_binary(payload) {
        let (tag, rec) = frame::unframe(payload).map_err(wire_err)?;
        return match tag {
            MsgTag::WorkResult => work_result_from_record(&rec),
            MsgTag::Error => Err(error_from_record(&rec)),
            other => Err(bad(&format!("unexpected reply tag {other:?}"))),
        };
    }
    let text =
        std::str::from_utf8(payload).map_err(|_| A1Error::Internal("reply not utf-8".into()))?;
    let j = Json::parse(text).map_err(|e| A1Error::Internal(e.to_string()))?;
    work_result_from_json(&j)
}

/// Encode a query outcome (or error) reply.
pub fn encode_outcome(out: &A1Result<QueryOutcome>, fmt: WireFormat) -> Vec<u8> {
    match (out, fmt) {
        (Ok(o), WireFormat::Binary) => frame::frame(MsgTag::Outcome, &outcome_to_record(o)),
        (Err(e), WireFormat::Binary) => error_frame(e),
        (_, WireFormat::Json) => outcome_to_json(out).to_string().into_bytes(),
    }
}

/// Decode a query outcome reply, auto-detecting the format.
pub fn decode_outcome(payload: &[u8]) -> A1Result<QueryOutcome> {
    if is_binary(payload) {
        let (tag, rec) = frame::unframe(payload).map_err(wire_err)?;
        return match tag {
            MsgTag::Outcome => outcome_from_record(&rec),
            MsgTag::Error => Err(error_from_record(&rec)),
            other => Err(bad(&format!("unexpected reply tag {other:?}"))),
        };
    }
    let text =
        std::str::from_utf8(payload).map_err(|_| A1Error::Internal("reply not utf-8".into()))?;
    let j = Json::parse(text).map_err(|e| A1Error::Internal(e.to_string()))?;
    outcome_from_json(&j)
}

// ------------------------------------------------------ mutation body codec

// The shared mutation/replication-log body vocabulary. One field id per
// known key, ordered so that decoding a record in field-id order reproduces
// the canonical key order of the `replog::entry` constructors (and of
// `Mutation::to_json` / `MutationRecord::to_json`), making binary⟷JSON
// round-trips key-order-exact for every body A1 produces.
const MF_OP: u16 = 0;
const MF_TENANT: u16 = 1;
const MF_GRAPH: u16 = 2;
const MF_TYPE: u16 = 3;
const MF_KEY: u16 = 4;
const MF_SRC_TYPE: u16 = 5;
const MF_SRC: u16 = 6;
const MF_ETYPE: u16 = 7;
const MF_DST_TYPE: u16 = 8;
const MF_DST: u16 = 9;
const MF_DATA: u16 = 10;
const MF_SOURCE: u16 = 11;
const MF_SEQ: u16 = 12;
const MF_PKEY: u16 = 13;
/// Catch-all for keys this build does not know (forward compatibility).
const MF_EXTRA: u16 = 15;

/// Known keys that carry plain strings vs. arbitrary JSON values.
const MF_STRING_KEYS: [(&str, u16); 9] = [
    ("op", MF_OP),
    ("tenant", MF_TENANT),
    ("graph", MF_GRAPH),
    ("type", MF_TYPE),
    ("src_type", MF_SRC_TYPE),
    ("etype", MF_ETYPE),
    ("dst_type", MF_DST_TYPE),
    ("source", MF_SOURCE),
    ("pkey", MF_PKEY),
];
const MF_JSON_KEYS: [(&str, u16); 4] = [
    ("key", MF_KEY),
    ("src", MF_SRC),
    ("dst", MF_DST),
    ("data", MF_DATA),
];

fn mf_name(id: u16) -> Option<&'static str> {
    MF_STRING_KEYS
        .iter()
        .chain(MF_JSON_KEYS.iter())
        .find(|(_, fid)| *fid == id)
        .map(|(name, _)| *name)
        .or(if id == MF_SEQ { Some("seq") } else { None })
}

/// Encode a mutation / replication-log entry body ([`crate::replog::entry`]
/// shape, optionally with the ingest envelope fields) as a binary frame.
pub fn mutation_body_to_binary(body: &Json) -> Vec<u8> {
    frame::frame(MsgTag::Mutation, &mutation_body_record(body))
}

/// Encode an ingest stream record body (a mutation body extended with the
/// `source`/`seq`/`pkey` envelope) as a binary frame. Same record layout as
/// [`mutation_body_to_binary`], different message tag.
pub fn mutation_record_to_binary(body: &Json) -> Vec<u8> {
    frame::frame(MsgTag::MutationRecord, &mutation_body_record(body))
}

fn mutation_body_record(body: &Json) -> Record {
    let Json::Obj(pairs) = body else {
        // Non-object bodies (never produced by A1, but the codec must not
        // lose them): carry the whole value in the catch-all field.
        return Record::new().with(MF_EXTRA, json_blob(body));
    };
    let mut rec = Record::new();
    let mut extra: Vec<(String, Json)> = Vec::new();
    for (k, v) in pairs {
        let field = MF_STRING_KEYS
            .iter()
            .find(|(name, _)| name == k)
            .and_then(|(_, id)| match v {
                Json::Str(s) => Some((*id, Value::String(s.clone()))),
                _ => None,
            })
            .or_else(|| {
                MF_JSON_KEYS
                    .iter()
                    .find(|(name, _)| name == k)
                    .map(|(_, id)| (*id, json_blob(v)))
            })
            .or_else(|| match v {
                Json::Num(n)
                    if k == "seq"
                        && n.is_finite()
                        && n.fract() == 0.0
                        && *n >= 0.0
                        && *n < J_INT_MAX =>
                {
                    Some((MF_SEQ, Value::UInt64(*n as u64)))
                }
                _ => None,
            });
        match field {
            Some((id, value)) if rec.get(id).is_none() => {
                rec.set(id, value);
            }
            _ => extra.push((k.clone(), v.clone())),
        }
    }
    if !extra.is_empty() {
        rec.set(MF_EXTRA, json_blob(&Json::Obj(extra)));
    }
    rec
}

fn mutation_body_from_record(rec: &Record) -> A1Result<Json> {
    let mut pairs: Vec<(String, Json)> = Vec::new();
    let mut extra: Option<Json> = None;
    for (id, v) in rec.fields() {
        if *id == MF_EXTRA {
            let Value::Blob(b) = v else {
                return Err(bad("mutation extra"));
            };
            extra = Some(json_from_blob(b)?);
            continue;
        }
        let name = mf_name(*id).ok_or_else(|| bad("mutation field"))?;
        let value = match v {
            Value::String(s) => Json::Str(s.clone()),
            Value::UInt64(n) => Json::Num(*n as f64),
            Value::Blob(b) => json_from_blob(b)?,
            _ => return Err(bad("mutation value")),
        };
        pairs.push((name.to_string(), value));
    }
    match extra {
        Some(Json::Obj(more)) => pairs.extend(more),
        Some(other) if pairs.is_empty() => return Ok(other),
        Some(other) => pairs.push(("extra".to_string(), other)),
        None => {}
    }
    Ok(Json::Obj(pairs))
}

/// Decode a mutation body from either wire format: a binary [`MsgTag::Mutation`]
/// (or [`MsgTag::MutationRecord`]) frame, or legacy JSON text — which is how
/// replication-log entries written by pre-binary builds replay byte-for-byte.
pub fn decode_mutation_body(bytes: &[u8]) -> A1Result<Json> {
    if is_binary(bytes) {
        let (tag, rec) = frame::unframe(bytes).map_err(wire_err)?;
        if !matches!(tag, MsgTag::Mutation | MsgTag::MutationRecord) {
            return Err(bad(&format!("unexpected mutation tag {tag:?}")));
        }
        return mutation_body_from_record(&rec);
    }
    let text =
        std::str::from_utf8(bytes).map_err(|_| A1Error::Internal("entry not utf-8".into()))?;
    Json::parse(text).map_err(|e| A1Error::Internal(e.to_string()))
}

/// Encode a mutation body in the given format.
pub fn encode_mutation_body(body: &Json, fmt: WireFormat) -> Vec<u8> {
    match fmt {
        WireFormat::Binary => mutation_body_to_binary(body),
        WireFormat::Json => body.to_string().into_bytes(),
    }
}

// ------------------------------------------------------------ legacy JSON

/// Serialize a [`WorkOp`] as legacy JSON text (the [`WireFormat::Json`]
/// fallback and debug form).
pub fn work_op_to_json(op: &WorkOp) -> Json {
    Json::obj(vec![
        ("t", Json::str("work")),
        ("tenant", Json::str(&op.tenant)),
        ("graph", Json::str(&op.graph)),
        ("ts", Json::Num(op.snapshot_ts as f64)),
        (
            "vertices",
            Json::Arr(
                op.vertices
                    .iter()
                    .map(|a| Json::Num(a.raw() as f64))
                    .collect(),
            ),
        ),
        ("step", step_to_json(&op.step)),
        ("emit_rows", Json::Bool(op.emit_rows)),
        ("select", select_to_json(&op.select)),
        ("cache_bypass", Json::Bool(op.cache_bypass)),
    ])
}

pub fn work_op_from_json(j: &Json) -> A1Result<WorkOp> {
    let err = |m: &str| A1Error::Internal(format!("bad work op: {m}"));
    Ok(WorkOp {
        tenant: j
            .get("tenant")
            .and_then(Json::as_str)
            .ok_or_else(|| err("tenant"))?
            .into(),
        graph: j
            .get("graph")
            .and_then(Json::as_str)
            .ok_or_else(|| err("graph"))?
            .into(),
        snapshot_ts: j
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| err("ts"))? as u64,
        vertices: j
            .get("vertices")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("vertices"))?
            .iter()
            .filter_map(|v| v.as_f64().map(|n| Addr::from_raw(n as u64)))
            .collect(),
        step: step_from_json(j.get("step").ok_or_else(|| err("step"))?)?,
        emit_rows: j.get("emit_rows").and_then(Json::as_bool).unwrap_or(false),
        select: select_from_json(j.get("select").unwrap_or(&Json::Null)),
        cache_bypass: j
            .get("cache_bypass")
            .and_then(Json::as_bool)
            .unwrap_or(false),
    })
}

fn dir_to_json(d: Dir) -> Json {
    Json::str(if d == Dir::Out { "out" } else { "in" })
}

fn dir_from_json(j: Option<&Json>) -> Dir {
    match j.and_then(Json::as_str) {
        Some("in") => Dir::In,
        _ => Dir::Out,
    }
}

fn preds_to_json(preds: &[AttrPredicate]) -> Json {
    Json::Arr(
        preds
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("a", Json::str(&p.attr)),
                    (
                        "k",
                        p.map_key
                            .as_ref()
                            .map(|k| Json::str(k))
                            .unwrap_or(Json::Null),
                    ),
                    ("o", Json::str(p.op.as_str())),
                    ("v", p.value.clone()),
                ])
            })
            .collect(),
    )
}

fn preds_from_json(j: Option<&Json>) -> Vec<AttrPredicate> {
    j.and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|p| {
                    Some(AttrPredicate {
                        attr: p.get("a")?.as_str()?.to_string(),
                        map_key: p.get("k").and_then(Json::as_str).map(String::from),
                        op: CmpOp::parse(p.get("o")?.as_str()?)?,
                        value: p.get("v")?.clone(),
                    })
                })
                .collect()
        })
        .unwrap_or_default()
}

fn step_to_json(s: &CompiledStep) -> Json {
    Json::obj(vec![
        (
            "tf",
            s.type_filter
                .map(|t| Json::Num(t.0 as f64))
                .unwrap_or(Json::Null),
        ),
        (
            "idf",
            s.id_filter
                .map(|a| Json::Num(a.raw() as f64))
                .unwrap_or(Json::Null),
        ),
        ("preds", preds_to_json(&s.preds)),
        (
            "matches",
            Json::Arr(
                s.matches
                    .iter()
                    .map(|m| {
                        Json::obj(vec![
                            ("d", dir_to_json(m.dir)),
                            ("et", Json::Num(m.edge_type.0 as f64)),
                            (
                                "tgt",
                                m.target
                                    .map(|a| Json::Num(a.raw() as f64))
                                    .unwrap_or(Json::Null),
                            ),
                            (
                                "tt",
                                m.target_type
                                    .map(|t| Json::Num(t.0 as f64))
                                    .unwrap_or(Json::Null),
                            ),
                            ("p", preds_to_json(&m.preds)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "traverse",
            match &s.traverse {
                Some(t) => Json::obj(vec![
                    ("d", dir_to_json(t.dir)),
                    ("et", Json::Num(t.edge_type.0 as f64)),
                    ("p", preds_to_json(&t.edge_preds)),
                ]),
                None => Json::Null,
            },
        ),
    ])
}

fn step_from_json(j: &Json) -> A1Result<CompiledStep> {
    Ok(CompiledStep {
        type_filter: j.get("tf").and_then(Json::as_f64).map(|n| TypeId(n as u32)),
        id_filter: j
            .get("idf")
            .and_then(Json::as_f64)
            .map(|n| Addr::from_raw(n as u64)),
        preds: preds_from_json(j.get("preds")),
        matches: j
            .get("matches")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .map(|m| CompiledMatch {
                        dir: dir_from_json(m.get("d")),
                        edge_type: TypeId(m.get("et").and_then(Json::as_f64).unwrap_or(0.0) as u32),
                        target: m
                            .get("tgt")
                            .and_then(Json::as_f64)
                            .map(|n| Addr::from_raw(n as u64)),
                        target_type: m.get("tt").and_then(Json::as_f64).map(|n| TypeId(n as u32)),
                        preds: preds_from_json(m.get("p")),
                    })
                    .collect()
            })
            .unwrap_or_default(),
        traverse: match j.get("traverse") {
            Some(t) if !t.is_null() => Some(CompiledTraverse {
                dir: dir_from_json(t.get("d")),
                edge_type: TypeId(t.get("et").and_then(Json::as_f64).unwrap_or(0.0) as u32),
                edge_preds: preds_from_json(t.get("p")),
            }),
            _ => None,
        },
    })
}

fn select_to_json(s: &Select) -> Json {
    match s {
        Select::All => Json::str("all"),
        Select::Count => Json::str("count"),
        Select::Fields(fields) => {
            Json::Arr(fields.iter().map(|f| Json::Str(field_sel_str(f))).collect())
        }
    }
}

fn select_from_json(j: &Json) -> Select {
    match j {
        Json::Str(s) if s == "count" => Select::Count,
        Json::Arr(items) => Select::Fields(
            items
                .iter()
                .filter_map(|v| v.as_str())
                .map(parse_field_sel)
                .collect(),
        ),
        _ => Select::All,
    }
}

pub fn work_result_to_json(r: &A1Result<WorkResult>) -> Json {
    match r {
        Ok(r) => Json::obj(vec![
            ("t", Json::str("ok")),
            (
                "next",
                Json::Arr(r.next.iter().map(|a| Json::Num(a.raw() as f64)).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    r.rows
                        .iter()
                        .map(|(a, row)| Json::Arr(vec![Json::Num(a.raw() as f64), row.clone()]))
                        .collect(),
                ),
            ),
            ("vr", Json::Num(r.metrics.vertices_read as f64)),
            ("ev", Json::Num(r.metrics.edges_visited as f64)),
            ("lr", Json::Num(r.metrics.local_reads as f64)),
            ("rr", Json::Num(r.metrics.remote_reads as f64)),
            ("mo", Json::Num(r.morsels as f64)),
            ("pm", Json::Num(r.max_concurrent_morsels as f64)),
            ("ch", Json::Num(r.metrics.cache_hits as f64)),
            ("cm", Json::Num(r.metrics.cache_misses as f64)),
            ("fv", Json::Num(r.metrics.fetch_verbs as f64)),
        ]),
        Err(e) => error_to_json(e),
    }
}

pub fn work_result_from_json(j: &Json) -> A1Result<WorkResult> {
    if j.get("t").and_then(Json::as_str) != Some("ok") {
        return Err(error_from_json(j));
    }
    Ok(WorkResult {
        next: j
            .get("next")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.as_f64().map(|n| Addr::from_raw(n as u64)))
                    .collect()
            })
            .unwrap_or_default(),
        rows: j
            .get("rows")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(|pair| {
                        let addr = Addr::from_raw(pair.at(0)?.as_f64()? as u64);
                        Some((addr, pair.at(1)?.clone()))
                    })
                    .collect()
            })
            .unwrap_or_default(),
        metrics: QueryMetrics {
            vertices_read: j.get("vr").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            edges_visited: j.get("ev").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            local_reads: j.get("lr").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            remote_reads: j.get("rr").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            cache_hits: j.get("ch").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            cache_misses: j.get("cm").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            fetch_verbs: j.get("fv").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            ..QueryMetrics::default()
        },
        morsels: j.get("mo").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        max_concurrent_morsels: j.get("pm").and_then(Json::as_f64).unwrap_or(0.0) as u64,
    })
}

fn metrics_to_json(m: &QueryMetrics) -> Json {
    Json::obj(vec![
        ("ts", Json::Num(m.snapshot_ts as f64)),
        ("hops", Json::Num(m.hops as f64)),
        ("vr", Json::Num(m.vertices_read as f64)),
        ("ev", Json::Num(m.edges_visited as f64)),
        ("lr", Json::Num(m.local_reads as f64)),
        ("rr", Json::Num(m.remote_reads as f64)),
        ("rpcs", Json::Num(m.rpcs as f64)),
        ("reqb", Json::Num(m.rpc_req_bytes as f64)),
        ("repb", Json::Num(m.rpc_reply_bytes as f64)),
        ("ch", Json::Num(m.cache_hits as f64)),
        ("cm", Json::Num(m.cache_misses as f64)),
        ("fv", Json::Num(m.fetch_verbs as f64)),
    ])
}

fn metrics_from_json(j: Option<&Json>) -> QueryMetrics {
    let Some(j) = j else {
        return QueryMetrics::default();
    };
    let f = |k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
    QueryMetrics {
        snapshot_ts: f("ts"),
        hops: f("hops") as u32,
        vertices_read: f("vr"),
        edges_visited: f("ev"),
        local_reads: f("lr"),
        remote_reads: f("rr"),
        rpcs: f("rpcs"),
        rpc_req_bytes: f("reqb"),
        rpc_reply_bytes: f("repb"),
        cache_hits: f("ch"),
        cache_misses: f("cm"),
        fetch_verbs: f("fv"),
    }
}

pub fn outcome_to_json(out: &A1Result<QueryOutcome>) -> Json {
    match out {
        Ok(o) => Json::obj(vec![
            ("t", Json::str("ok")),
            ("rows", Json::Arr(o.rows.clone())),
            (
                "count",
                o.count.map(|c| Json::Num(c as f64)).unwrap_or(Json::Null),
            ),
            (
                "cont",
                o.continuation
                    .as_ref()
                    .map(|c| Json::str(c))
                    .unwrap_or(Json::Null),
            ),
            ("metrics", metrics_to_json(&o.metrics)),
        ]),
        Err(e) => error_to_json(e),
    }
}

pub fn outcome_from_json(j: &Json) -> A1Result<QueryOutcome> {
    if j.get("t").and_then(Json::as_str) != Some("ok") {
        return Err(error_from_json(j));
    }
    Ok(QueryOutcome {
        rows: j
            .get("rows")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default(),
        count: j.get("count").and_then(Json::as_f64).map(|n| n as u64),
        continuation: j.get("cont").and_then(Json::as_str).map(String::from),
        metrics: metrics_from_json(j.get("metrics")),
        per_hop: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use a1_farm::RegionId;

    fn sample_work_op() -> WorkOp {
        WorkOp {
            tenant: "t".into(),
            graph: "g".into(),
            snapshot_ts: 42,
            vertices: vec![Addr::new(RegionId(1), 64), Addr::new(RegionId(2), 128)],
            step: CompiledStep {
                type_filter: Some(TypeId(3)),
                id_filter: Some(Addr::new(RegionId(1), 192)),
                preds: vec![AttrPredicate {
                    attr: "str_str_map".into(),
                    map_key: Some("character".into()),
                    op: CmpOp::Eq,
                    value: Json::str("Bätman"),
                }],
                matches: vec![CompiledMatch {
                    dir: Dir::Out,
                    edge_type: TypeId(7),
                    target: Some(Addr::new(RegionId(3), 256)),
                    target_type: None,
                    preds: vec![],
                }],
                traverse: Some(CompiledTraverse {
                    dir: Dir::In,
                    edge_type: TypeId(9),
                    edge_preds: vec![AttrPredicate {
                        attr: "w".into(),
                        map_key: None,
                        op: CmpOp::Ge,
                        value: Json::Num(2.0),
                    }],
                }),
            },
            emit_rows: true,
            select: Select::Fields(vec![FieldSel {
                attr: "name".into(),
                index: Some(0),
            }]),
            cache_bypass: true,
        }
    }

    #[test]
    fn work_op_roundtrips_in_both_formats() {
        let op = sample_work_op();
        for fmt in [WireFormat::Binary, WireFormat::Json] {
            let wire = encode_work_op(&op, fmt);
            let Request::Work(back) = decode_request(&wire).unwrap() else {
                panic!("not a work request");
            };
            assert_eq!(back, op, "{fmt:?}");
        }
        // The binary ship is substantially smaller than the JSON one.
        let bin = encode_work_op(&op, WireFormat::Binary).len();
        let json = encode_work_op(&op, WireFormat::Json).len();
        assert!(bin * 2 < json, "binary {bin} not < half of json {json}");
    }

    #[test]
    fn work_result_roundtrips_in_both_formats() {
        let r = WorkResult {
            next: vec![Addr::new(RegionId(4), 64)],
            rows: vec![(
                Addr::new(RegionId(4), 64),
                Json::obj(vec![("a", Json::Num(1.0)), ("né", Json::str("ü"))]),
            )],
            metrics: QueryMetrics {
                vertices_read: 3,
                edges_visited: 5,
                local_reads: 7,
                remote_reads: 1,
                cache_hits: 6,
                cache_misses: 2,
                fetch_verbs: 9,
                ..QueryMetrics::default()
            },
            morsels: 4,
            max_concurrent_morsels: 2,
        };
        for fmt in [WireFormat::Binary, WireFormat::Json] {
            let wire = encode_work_result(&Ok(r.clone()), fmt);
            let back = decode_work_result(&wire).unwrap();
            assert_eq!(back, r, "{fmt:?}");
        }
    }

    #[test]
    fn errors_keep_their_classification() {
        for e in [
            A1Error::ContinuationExpired,
            A1Error::WorkingSetExceeded { limit: 1000 },
            A1Error::Query("boom".into()),
            A1Error::Schema("bad field".into()),
            A1Error::Internal("oops".into()),
            A1Error::Overloaded { retry_after_ms: 25 },
        ] {
            for fmt in [WireFormat::Binary, WireFormat::Json] {
                let wire = encode_outcome(&Err(e.clone()), fmt);
                let back = decode_outcome(&wire).unwrap_err();
                assert_eq!(back, e, "{fmt:?}");
                let wire = encode_work_result(&Err(e.clone()), fmt);
                let back = decode_work_result(&wire).unwrap_err();
                assert_eq!(back, e, "{fmt:?}");
            }
        }
    }

    #[test]
    fn legacy_stringly_errors_still_classify() {
        // A pre-binary peer sends `{"t":"err","msg":…}` with no code.
        let j = Json::obj(vec![
            ("t", Json::str("err")),
            ("msg", Json::str("continuation token expired")),
        ]);
        assert_eq!(
            outcome_from_json(&j).unwrap_err(),
            A1Error::ContinuationExpired
        );
    }

    #[test]
    fn outcome_roundtrips_in_both_formats() {
        let o = QueryOutcome {
            rows: vec![Json::obj(vec![("id", Json::str("v1"))]), Json::Null],
            count: Some(7),
            continuation: Some("c:2:9".into()),
            metrics: QueryMetrics {
                snapshot_ts: 10,
                hops: 2,
                vertices_read: 30,
                rpcs: 4,
                rpc_req_bytes: 1234,
                rpc_reply_bytes: 5678,
                cache_hits: 21,
                cache_misses: 9,
                fetch_verbs: 13,
                ..QueryMetrics::default()
            },
            per_hop: Vec::new(),
        };
        for fmt in [WireFormat::Binary, WireFormat::Json] {
            let wire = encode_outcome(&Ok(o.clone()), fmt);
            let back = decode_outcome(&wire).unwrap();
            assert_eq!(back.rows, o.rows, "{fmt:?}");
            assert_eq!(back.count, o.count);
            assert_eq!(back.continuation, o.continuation);
            assert_eq!(back.metrics, o.metrics);
        }
    }

    #[test]
    fn requests_roundtrip() {
        for fmt in [WireFormat::Binary, WireFormat::Json] {
            let wire = encode_query_request("tén", "g", "{\"id\":\"x\"}", "", fmt);
            assert_eq!(
                decode_request(&wire).unwrap(),
                Request::Query {
                    tenant: "tén".into(),
                    graph: "g".into(),
                    q: "{\"id\":\"x\"}".into(),
                    client: String::new(),
                }
            );
            let wire = encode_query_request("t", "g", "q", "edge-rank", fmt);
            match decode_request(&wire).unwrap() {
                Request::Query { client, .. } => assert_eq!(client, "edge-rank", "{fmt:?}"),
                other => panic!("not a query: {other:?}"),
            }
            let wire = encode_page_request(99, "", fmt);
            assert_eq!(
                decode_request(&wire).unwrap(),
                Request::Page {
                    cid: 99,
                    client: String::new(),
                }
            );
            let wire = encode_page_request(7, "edge-rank", fmt);
            assert_eq!(
                decode_request(&wire).unwrap(),
                Request::Page {
                    cid: 7,
                    client: "edge-rank".into(),
                }
            );
        }
    }

    #[test]
    fn json_binary_codec() {
        let cases = [
            Json::Null,
            Json::Bool(true),
            Json::Num(0.0),
            Json::Num(-123456789.0),
            Json::Num(2.5),
            Json::Num(1e300),
            Json::str("héllo \u{1F600}"),
            Json::Arr(vec![Json::Num(1.0), Json::Null]),
            Json::Obj(vec![
                ("k".into(), Json::str("v")),
                (
                    "nested".into(),
                    Json::Obj(vec![("a".into(), Json::Num(1.0))]),
                ),
            ]),
        ];
        for j in cases {
            let mut buf = Vec::new();
            encode_json(&j, &mut buf);
            assert_eq!(json_from_blob(&buf).unwrap(), j);
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // 100k nested single-element arrays: must error at the depth cap,
        // not blow the decoder's stack (the JSON text parser caps at 128).
        let mut buf = Vec::new();
        for _ in 0..100_000 {
            buf.push(J_ARR);
            buf.push(1); // varint(1)
        }
        buf.push(J_NULL);
        assert_eq!(
            json_from_blob(&buf).unwrap_err(),
            wire_err(WireError::TooDeep)
        );
    }

    #[test]
    fn json_binary_decoder_rejects_garbage() {
        assert!(json_from_blob(&[]).is_err());
        assert!(json_from_blob(&[0xFE]).is_err());
        assert!(json_from_blob(&[J_STR, 200]).is_err());
        // hostile array length
        let mut buf = vec![J_ARR];
        write_varint(&mut buf, u64::MAX);
        assert!(json_from_blob(&buf).is_err());
        // trailing bytes
        assert!(json_from_blob(&[J_NULL, J_NULL]).is_err());
    }

    #[test]
    fn mutation_bodies_roundtrip_key_order_exact() {
        use crate::replog::entry;
        let bodies = [
            entry::vertex_upsert(
                "tén",
                "g",
                "entity",
                &Json::str("v1"),
                &Json::obj(vec![("id", Json::str("v1")), ("rank", Json::Num(3.0))]),
            ),
            entry::vertex_delete("t", "g", "entity", &Json::Num(7.0)),
            entry::edge_upsert(
                "t",
                "g",
                "actor",
                &Json::str("a"),
                "acted_in",
                "film",
                &Json::str("f"),
                &Json::obj(vec![("rôle", Json::str("héro"))]),
            ),
            entry::edge_delete(
                "t",
                "g",
                "actor",
                &Json::str("a"),
                "x",
                "film",
                &Json::str("f"),
            ),
        ];
        for body in bodies {
            let bin = mutation_body_to_binary(&body);
            assert!(is_binary(&bin));
            // Key-order-exact: Json equality includes object key order.
            assert_eq!(decode_mutation_body(&bin).unwrap(), body);
            // Legacy JSON text decodes through the same entry point.
            let text = body.to_string().into_bytes();
            assert_eq!(decode_mutation_body(&text).unwrap(), body);
            // And the binary body is no bigger (in practice much smaller).
            assert!(bin.len() < text.len(), "{} !< {}", bin.len(), text.len());
        }
    }

    #[test]
    fn mutation_body_unknown_keys_survive() {
        let body = Json::Obj(vec![
            ("op".into(), Json::str("put_vertex")),
            ("tenant".into(), Json::str("t")),
            ("graph".into(), Json::str("g")),
            ("type".into(), Json::str("e")),
            ("data".into(), Json::obj(vec![("id", Json::str("v"))])),
            ("future_field".into(), Json::Num(9.0)),
        ]);
        let decoded = decode_mutation_body(&mutation_body_to_binary(&body)).unwrap();
        assert_eq!(decoded.get("future_field"), Some(&Json::Num(9.0)));
        assert_eq!(decoded.get("op"), body.get("op"));
    }
}
