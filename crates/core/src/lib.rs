//! A1: a distributed in-memory graph database (paper §3).
//!
//! This crate is the A1 layer proper, built as a FaRM "coprocessor" (§2.2):
//! the graph data model, catalog, vertex/edge storage, indexes, the A1QL
//! query language and its distributed query engine, the asynchronous task
//! framework, and the cluster facade (frontends + backends).
//!
//! Layering (paper Fig. 1):
//!
//! ```text
//!   Graph applications            examples/, benches
//!   A1 graph API                  server::A1Client
//!   Graph query execution         query::{plan, exec}
//!   Graph store and index         store, vertex, edges, catalog
//!   Core data structures          a1_farm::BTree
//!   Distributed transactions      a1_farm::Txn
//!   Distributed memory            a1_farm regions
//!   RDMA communication fabric     a1_rdma
//! ```

pub mod batch;
pub mod cache;
pub mod catalog;
pub mod convert;
pub mod edges;
pub mod error;
pub mod model;
pub mod query;
pub mod replog;
pub mod server;
pub mod store;
pub mod tasks;
pub mod vertex;
pub mod wire;

pub use batch::{Applied, BatchApplier, Mutation};
pub use cache::{CacheConfig, CacheStats, VertexCache};
pub use error::{A1Error, A1Result};
pub use model::{EdgeTypeDef, GraphMeta, LifecycleState, TypeId, VertexTypeDef};
pub use query::{QueryMetrics, QueryOutcome};
pub use server::{A1Client, A1Cluster, A1Config, AdmissionConfig, AdmissionPermit};
pub use wire::WireFormat;

pub use a1_bond::{BondType, FieldDef, Record, Schema, Value};
pub use a1_farm::{FarmCluster, FarmConfig, MachineId};
pub use a1_json::Json;
