//! The graph store: data-plane CRUD on vertices and edges (paper §3.2).
//!
//! All operations run inside a caller-provided FaRM transaction, so clients
//! can group them atomically (§3: "CreateTransaction ... group multiple data
//! plane operations into a single atomic transaction"). Layout decisions
//! follow the paper: vertex data is allocated next to the vertex header;
//! edge lists next to their vertex; index entries point at headers with
//! ⟨addr, size⟩ pointers.

use crate::catalog::{GraphProxy, VertexProxy};
use crate::convert::record_to_json;
use crate::edges::{self, Dir, EdgeConfig};
use crate::error::{A1Error, A1Result};
use crate::model::TypeId;
use crate::vertex::{vertex_ptr, VertexHeader, VERTEX_HEADER_SIZE};
use a1_bond::{decode_record, encode_record, keyenc, Record, Value};
use a1_farm::{Addr, FarmCluster, FarmError, Hint, Ptr, Txn};
use a1_json::Json;
use std::sync::Arc;

/// Bounded jittered exponential backoff between optimistic-conflict retries
/// (paper Fig. 3). Sleeps `min(2·2^attempt + jitter, cap_us)` microseconds,
/// with the jitter drawn from the cluster's seeded RNG so contending
/// retriers desynchronize instead of re-colliding in lockstep, and the sleep
/// routed through the cluster clock (virtual under simulation). Shared by
/// [`run_a1`], `A1Txn::commit_with_retry`, `A1Client::apply_batch`, and the
/// `a1-ingest` applier loop.
pub fn conflict_backoff(farm: &FarmCluster, attempt: usize, cap_us: u64) {
    let fabric = farm.fabric();
    let backoff_us = 2u64 << attempt.min(20);
    let jitter = 1 + fabric.rng().gen_range(7);
    fabric.clock().sleep(std::time::Duration::from_micros(
        (backoff_us + jitter).min(cap_us.max(1)),
    ));
}

/// Retry wrapper like [`FarmCluster::run`] but for A1-level results.
pub fn run_a1<T>(
    farm: &Arc<FarmCluster>,
    origin: a1_farm::MachineId,
    mut f: impl FnMut(&mut Txn) -> A1Result<T>,
) -> A1Result<T> {
    let max = farm.config().max_txn_retries;
    for attempt in 0..=max {
        let mut tx = farm.begin(origin);
        match f(&mut tx) {
            Ok(v) => match tx.commit() {
                Ok(_) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < max => {}
                Err(e) => return Err(e.into()),
            },
            Err(e) if e.is_retryable() && attempt < max => {
                tx.abort();
            }
            Err(e) => {
                tx.abort();
                return Err(e);
            }
        }
        conflict_backoff(farm, attempt, 300);
    }
    Err(FarmError::Conflict.into())
}

/// Secondary-index key: order-preserving attr encoding + owner address (the
/// address suffix makes keys unique without a uniqueness requirement on the
/// attribute, §3).
fn secondary_key(value: &Value, owner: Addr) -> A1Result<Vec<u8>> {
    let mut k = keyenc::encode_key(value).map_err(|e| A1Error::Schema(e.to_string()))?;
    k.extend_from_slice(&owner.raw().to_be_bytes());
    Ok(k)
}

/// Primary-index key for a vertex's primary-key value.
pub fn primary_key_bytes(value: &Value) -> A1Result<Vec<u8>> {
    keyenc::encode_key(value).map_err(|e| A1Error::Schema(e.to_string()))
}

/// Stateless data-plane operations (all take a transaction).
#[derive(Default)]
pub struct GraphStore {
    pub edge_cfg: EdgeConfig,
}

impl GraphStore {
    pub fn with_inline_threshold(threshold: usize) -> GraphStore {
        GraphStore {
            edge_cfg: EdgeConfig {
                inline_threshold: threshold,
            },
        }
    }

    /// Create a vertex: data object + header object (co-located), primary
    /// and secondary index insertions. Returns the vertex pointer.
    pub fn create_vertex(&self, tx: &mut Txn, t: &VertexProxy, rec: Record) -> A1Result<Ptr> {
        t.def.schema.validate(&rec)?;
        let pk_value = rec
            .get(t.def.primary_key)
            .ok_or_else(|| A1Error::Schema("primary key missing".into()))?
            .clone();
        let pk = primary_key_bytes(&pk_value)?;
        if t.primary.get(tx, &pk)?.is_some() {
            return Err(A1Error::AlreadyExists(format!(
                "vertex {}:{:?}",
                t.def.name, pk_value
            )));
        }

        // Data object first, then the header co-located next to it (§3.2:
        // "we use locality to store both of them in the same region").
        let data_bytes = encode_record(&rec);
        let data_ptr = tx.alloc(data_bytes.len().max(1), Hint::Local, &data_bytes)?;
        let hdr = VertexHeader::new(t.def.id, data_ptr);
        let hdr_ptr = tx.alloc(VERTEX_HEADER_SIZE, Hint::Near(data_ptr.addr), &hdr.encode())?;

        let mut ptr_bytes = Vec::with_capacity(Ptr::ENCODED_LEN);
        hdr_ptr.encode_to(&mut ptr_bytes);
        t.primary.insert(tx, &pk, &ptr_bytes)?;
        for (field, index) in &t.secondaries {
            if let Some(v) = rec.get(*field) {
                index.insert(tx, &secondary_key(v, hdr_ptr.addr)?, &ptr_bytes)?;
            }
        }
        Ok(hdr_ptr)
    }

    /// Primary-index lookup: pk value → vertex pointer (§3.2 "look up the
    /// vertex pointer from the index").
    pub fn vertex_by_pk(
        &self,
        tx: &mut Txn,
        t: &VertexProxy,
        pk_value: &Value,
    ) -> A1Result<Option<Ptr>> {
        let pk = primary_key_bytes(pk_value)?;
        match t.primary.get(tx, &pk)? {
            Some(v) => {
                Ok(Some(Ptr::decode(&v).ok_or_else(|| {
                    A1Error::Internal("bad index value".into())
                })?))
            }
            None => Ok(None),
        }
    }

    /// Secondary-index lookup: attr value → vertex pointers.
    pub fn vertices_by_secondary(
        &self,
        tx: &mut Txn,
        t: &VertexProxy,
        field: u16,
        value: &Value,
        limit: usize,
    ) -> A1Result<Vec<Ptr>> {
        let index = t
            .secondaries
            .iter()
            .find(|(f, _)| *f == field)
            .map(|(_, idx)| idx)
            .ok_or_else(|| A1Error::Query(format!("no secondary index on field {field}")))?;
        let prefix = primary_key_bytes(value)?;
        index
            .scan_prefix(tx, &prefix, limit)?
            .into_iter()
            .map(|(_, v)| {
                Ptr::decode(&v).ok_or_else(|| A1Error::Internal("bad index value".into()))
            })
            .collect()
    }

    /// Read a vertex's header and (optionally present) attribute record.
    /// Reading a vertex through a pointer is two dependent reads: header
    /// then data (§3.2).
    pub fn read_vertex(
        &self,
        tx: &mut Txn,
        addr: Addr,
    ) -> A1Result<(VertexHeader, Option<Record>)> {
        let (_, hdr) = edges::read_header(tx, addr)?;
        let rec = self.read_vertex_data(tx, &hdr)?;
        Ok((hdr, rec))
    }

    pub fn read_vertex_data(&self, tx: &mut Txn, hdr: &VertexHeader) -> A1Result<Option<Record>> {
        Ok(self.read_vertex_data_versioned(tx, hdr)?.map(|(_, r)| r))
    }

    /// Like [`read_vertex_data`](Self::read_vertex_data) but also returns
    /// the data object's FaRM version word, which the read cache needs to
    /// key its revalidation (an in-place attribute update bumps only the
    /// data object's version — the header object does not move).
    pub fn read_vertex_data_versioned(
        &self,
        tx: &mut Txn,
        hdr: &VertexHeader,
    ) -> A1Result<Option<(u64, Record)>> {
        if hdr.data.is_null() {
            return Ok(None);
        }
        let buf = tx.read(hdr.data)?;
        let rec = decode_record(buf.data()).map_err(|e| A1Error::Internal(e.to_string()))?;
        Ok(Some((buf.version, rec)))
    }

    /// Replace a vertex's attributes. The primary key is immutable. Grows
    /// reallocate the data object near the old one ("we keep its locality
    /// intact by passing the old object's address into the Alloc call",
    /// §2.2); secondary indexes are updated for changed values.
    pub fn update_vertex(
        &self,
        tx: &mut Txn,
        t: &VertexProxy,
        addr: Addr,
        rec: Record,
    ) -> A1Result<()> {
        t.def.schema.validate(&rec)?;
        let (hdr_buf, mut hdr) = edges::read_header(tx, addr)?;
        if hdr.type_id != t.def.id {
            return Err(A1Error::Schema("type mismatch on update".into()));
        }
        let old_rec = self.read_vertex_data(tx, &hdr)?.unwrap_or_default();
        let old_pk = old_rec.get(t.def.primary_key);
        if old_pk != rec.get(t.def.primary_key) {
            return Err(A1Error::Schema("primary key is immutable".into()));
        }

        let data_bytes = encode_record(&rec);
        if !hdr.data.is_null() {
            let data_buf = tx.read(hdr.data)?;
            if data_bytes.len() <= data_buf.capacity as usize {
                tx.update(&data_buf, data_bytes)?;
                // Rewrite the header too (same bytes) so its version word
                // moves on *every* vertex mutation — the invariant that lets
                // the read cache validate a whole cached vertex (header +
                // record) with one header probe.
                tx.update(&hdr_buf, hdr.encode())?;
            } else {
                let new_ptr = tx.alloc(data_bytes.len(), Hint::Near(hdr.data.addr), &data_bytes)?;
                tx.free(&data_buf)?;
                hdr.data = new_ptr;
                tx.update(&hdr_buf, hdr.encode())?;
            }
        } else {
            let new_ptr = tx.alloc(data_bytes.len().max(1), Hint::Near(addr), &data_bytes)?;
            hdr.data = new_ptr;
            tx.update(&hdr_buf, hdr.encode())?;
        }

        // Secondary index maintenance for changed attribute values.
        for (field, index) in &t.secondaries {
            let old_v = old_rec.get(*field);
            let new_v = rec.get(*field);
            if old_v == new_v {
                continue;
            }
            if let Some(ov) = old_v {
                index.remove(tx, &secondary_key(ov, addr)?)?;
            }
            if let Some(nv) = new_v {
                let mut ptr_bytes = Vec::with_capacity(Ptr::ENCODED_LEN);
                vertex_ptr(addr).encode_to(&mut ptr_bytes);
                index.insert(tx, &secondary_key(nv, addr)?, &ptr_bytes)?;
            }
        }
        Ok(())
    }

    /// Delete a vertex and *all* of its edges — inspecting the incoming edge
    /// list to clean up the forward half-edges at neighbors, exactly the
    /// dangling-edge scenario of §3.2.
    pub fn delete_vertex(
        &self,
        tx: &mut Txn,
        g: &GraphProxy,
        t: &VertexProxy,
        addr: Addr,
    ) -> A1Result<()> {
        let (hdr_buf, hdr) = edges::read_header(tx, addr)?;
        if hdr.type_id != t.def.id {
            return Err(A1Error::Schema("type mismatch on delete".into()));
        }
        let rec = self.read_vertex_data(tx, &hdr)?.unwrap_or_default();

        // Remove mirrored half-edges at all neighbors, then our own lists.
        for dir in [Dir::Out, Dir::In] {
            let mine = edges::enumerate(tx, &g.edge_tree, addr, &hdr, dir, None, usize::MAX)?;
            for he in mine {
                if he.other != addr {
                    let (other_buf, mut other_hdr) = edges::read_header(tx, he.other)?;
                    edges::remove_half_edge(
                        tx,
                        &g.edge_tree,
                        he.other,
                        &mut other_hdr,
                        dir.flip(),
                        he.edge_type,
                        addr,
                    )?;
                    tx.update(&other_buf, other_hdr.encode())?;
                }
                // Edge data is referenced from both half-edges; free it when
                // processing the outgoing side (or self-loops once).
                if dir == Dir::Out && !he.data.is_null() {
                    let data_buf = tx.read(he.data)?;
                    tx.free(&data_buf)?;
                }
            }
            // Drop our own list storage.
            match hdr.edges(dir) {
                crate::vertex::EdgeListRef::Inline(ptr) => {
                    let buf = tx.read(ptr)?;
                    tx.free(&buf)?;
                }
                crate::vertex::EdgeListRef::Tree => {
                    let prefix = edges::tree_prefix_dir(addr, dir);
                    for (k, _) in g.edge_tree.scan_prefix(tx, &prefix, usize::MAX)? {
                        g.edge_tree.remove(tx, &k)?;
                    }
                }
                crate::vertex::EdgeListRef::Empty => {}
            }
        }

        // Index removal.
        if let Some(pk_value) = rec.get(t.def.primary_key) {
            t.primary.remove(tx, &primary_key_bytes(pk_value)?)?;
        }
        for (field, index) in &t.secondaries {
            if let Some(v) = rec.get(*field) {
                index.remove(tx, &secondary_key(v, addr)?)?;
            }
        }

        // Free data + header.
        if !hdr.data.is_null() {
            let data_buf = tx.read(hdr.data)?;
            tx.free(&data_buf)?;
        }
        tx.free(&hdr_buf)?;
        Ok(())
    }

    /// Create an edge src→dst with optional attributes. The edge-data object
    /// is co-located with the source vertex (§3.2).
    pub fn create_edge(
        &self,
        tx: &mut Txn,
        g: &GraphProxy,
        edge_type: TypeId,
        src: Addr,
        dst: Addr,
        data: Option<Record>,
    ) -> A1Result<()> {
        let data_ptr = match data {
            Some(rec) if !rec.is_empty() => {
                let bytes = encode_record(&rec);
                tx.alloc(bytes.len(), Hint::Near(src), &bytes)?
            }
            _ => Ptr::NULL,
        };
        edges::add_edge(
            tx,
            &g.edge_tree,
            &self.edge_cfg,
            src,
            edge_type,
            dst,
            data_ptr,
        )
    }

    /// Delete one edge; frees its data object.
    pub fn delete_edge(
        &self,
        tx: &mut Txn,
        g: &GraphProxy,
        edge_type: TypeId,
        src: Addr,
        dst: Addr,
    ) -> A1Result<bool> {
        match edges::drop_edge(tx, &g.edge_tree, src, edge_type, dst)? {
            Some(data_ptr) => {
                if !data_ptr.is_null() {
                    let buf = tx.read(data_ptr)?;
                    tx.free(&buf)?;
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Read the attributes of the edge ⟨src, type, dst⟩.
    pub fn read_edge_data(
        &self,
        tx: &mut Txn,
        g: &GraphProxy,
        edge_type: TypeId,
        src: Addr,
        dst: Addr,
    ) -> A1Result<Option<Record>> {
        let (_, hdr) = edges::read_header(tx, src)?;
        let he = edges::find_half_edge(tx, &g.edge_tree, src, &hdr, Dir::Out, edge_type, dst)?;
        match he {
            Some(he) if !he.data.is_null() => {
                let buf = tx.read(he.data)?;
                Ok(Some(
                    decode_record(buf.data()).map_err(|e| A1Error::Internal(e.to_string()))?,
                ))
            }
            Some(_) => Ok(Some(Record::new())),
            None => Ok(None),
        }
    }

    /// Render a vertex as JSON (row output).
    pub fn vertex_to_json(&self, tx: &mut Txn, t: &VertexProxy, addr: Addr) -> A1Result<Json> {
        let (hdr, rec) = self.read_vertex(tx, addr)?;
        let mut obj = vec![("_type".to_string(), Json::Str(t.def.name.clone()))];
        let _ = hdr;
        if let Some(rec) = rec {
            if let Json::Obj(fields) = record_to_json(&t.def.schema, &rec) {
                obj.extend(fields);
            }
        }
        Ok(Json::Obj(obj))
    }
}
