//! Cross-query hot-vertex read cache (ROADMAP item 2).
//!
//! A1's traffic is read-skewed: a few hub vertices dominate traversals, and
//! the paper's latency story depends on hot reads not paying a payload
//! transfer on every query. PR 5's per-work-op [`NeighborMemo`] proved that
//! reading a hub once per *batch* is worth ~5.7x, but the memo dies with the
//! work op. This module promotes the idea to a **per-machine, cross-query
//! cache** of vertex headers and records, consulted by the work-op read path
//! before touching FaRM memory.
//!
//! # Why a stale entry is structurally impossible to return
//!
//! An entry remembers the FaRM **version words** it was filled at: the
//! vertex header object's version and (when the vertex carries attributes)
//! the data object's version. A hit is served only after a HEADER-only probe
//! ([`Txn::probe_version`]) of the live object shows *exactly* the
//! remembered version — i.e. the cached bytes **are** the current bytes.
//! Every mutation of a FaRM object bumps its version word at commit, a freed
//! or migrated-and-reused block fails the probe with `NotFound`, and a
//! locked in-flight commit is waited out by the probe itself — so there is
//! no window in which changed bytes revalidate. Invalidation (below) is a
//! performance courtesy, not a correctness mechanism.
//!
//! # Snapshot rule
//!
//! Readers are pinned at a `snapshot_ts`. An entry whose version is newer
//! than the reader's snapshot is *valid for other readers* but not for this
//! one — [`VertexCache::lookup`] filters such entries out (without evicting
//! them) and the reader falls through to FaRM's old-version store. An entry
//! whose version is *older* than the snapshot is served only if the probe
//! proves it is still the latest committed version, which by MVCC semantics
//! is exactly what a snapshot read at `snapshot_ts` would return.
//!
//! # Invalidation choke point
//!
//! All graph writes funnel through [`crate::batch::BatchApplier`] (ingest
//! and `apply_batch`) or the interactive transaction commit path; both
//! collect the vertex addresses they touched and evict them from every
//! machine's cache after a successful commit. This keeps dead entries from
//! wasting capacity and re-probing; a write that somehow bypassed the choke
//! point would still be caught by revalidation.
//!
//! [`NeighborMemo`]: crate::query::exec
//! [`Txn::probe_version`]: a1_farm::Txn::probe_version

use crate::vertex::{VertexHeader, VERTEX_HEADER_SIZE};
use a1_bond::Record;
use a1_farm::Addr;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Knobs for the per-machine hot-vertex read cache (on
/// [`A1Config`](crate::server::A1Config)).
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Master switch. Disabled, the read path never consults or fills the
    /// cache — the A/B baseline for the cache-effectiveness suite.
    pub enabled: bool,
    /// Capacity budget per machine, in (approximate) payload bytes. Entries
    /// are CLOCK-evicted once a machine's cache exceeds its budget.
    pub capacity_bytes: usize,
    /// Clients whose queries bypass the cache entirely (neither consult nor
    /// fill). For tenants that prefer paying full read latency over sharing
    /// cache capacity, and for A/B measurement against live traffic.
    pub bypass_clients: Vec<String>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            capacity_bytes: 64 << 20,
            bypass_clients: Vec::new(),
        }
    }
}

/// What the cache remembers about one vertex, plus the version words that
/// gate serving it (see module docs).
#[derive(Debug, Clone)]
pub struct CachedVertex {
    pub hdr: VertexHeader,
    /// Version word of the vertex *header* object when this entry was
    /// filled.
    pub hdr_version: u64,
    /// Version word of the *data* object (0 when `hdr.data` is null or the
    /// record has not been cached yet). Tracked separately because an
    /// in-place attribute update rewrites only the data object — the header
    /// object's version word does not move.
    pub data_version: u64,
    /// The decoded attribute record; `None` until a record-reading query
    /// upgrades the entry (header-only fills come from traversal hops).
    pub record: Option<Arc<Record>>,
}

impl CachedVertex {
    fn cost(&self) -> usize {
        // Header + the data object's size hint + fixed bookkeeping. The
        // decoded `Record` is not byte-exact to measure cheaply; the
        // encoded size the pointer advertises tracks it closely enough for
        // capacity accounting.
        VERTEX_HEADER_SIZE
            + 64
            + if self.record.is_some() {
                self.hdr.data.size as usize
            } else {
                0
            }
    }
}

struct Entry {
    v: CachedVertex,
    cost: usize,
    /// CLOCK reference bit: set on every lookup, cleared (second chance) as
    /// the hand sweeps past.
    referenced: bool,
}

#[derive(Default)]
struct Shard {
    map: HashMap<Addr, Entry>,
    /// CLOCK ring of insertion order. Slots whose address has since been
    /// removed from `map` are stale and are discarded as the hand meets
    /// them; the ring is compacted when stale slots dominate.
    ring: Vec<Addr>,
    hand: usize,
    bytes: usize,
}

const SHARDS: usize = 16;

/// One machine's cross-query read cache. Sharded by address so concurrent
/// morsels on the machine's worker pool don't serialize on one lock.
pub struct VertexCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Point-in-time counters for one machine's cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: u64,
    pub bytes: u64,
}

impl VertexCache {
    pub fn new(cfg: &CacheConfig) -> VertexCache {
        VertexCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: (cfg.capacity_bytes / SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, addr: Addr) -> &Mutex<Shard> {
        // Region ids and offsets are both sequential; mix them so neither
        // dimension alone maps a hot set onto one shard.
        let k = addr.raw();
        let h = (k ^ (k >> 17)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize % SHARDS]
    }

    /// Return the entry for `addr` if one exists and is not too new for a
    /// reader pinned at `snapshot_ts` (the snapshot rule in the module
    /// docs). The caller must still revalidate the entry's version words
    /// against live FaRM memory before using it.
    pub fn lookup(&self, addr: Addr, snapshot_ts: u64) -> Option<CachedVertex> {
        let mut s = self.shard(addr).lock();
        let e = s.map.get_mut(&addr)?;
        if e.v.hdr_version > snapshot_ts || e.v.data_version > snapshot_ts {
            // Too new for this reader; other (newer) readers may still use
            // it, so this is a bypass, not an eviction.
            return None;
        }
        e.referenced = true;
        Some(e.v.clone())
    }

    /// Insert or replace the entry for `addr`, evicting CLOCK victims if the
    /// shard is over budget. Returns the number of entries evicted (for the
    /// caller to charge into fabric metrics).
    pub fn insert(&self, addr: Addr, v: CachedVertex) -> u64 {
        let cost = v.cost();
        let mut s = self.shard(addr).lock();
        match s.map.insert(
            addr,
            Entry {
                v,
                cost,
                referenced: false,
            },
        ) {
            Some(old) => s.bytes -= old.cost,
            None => s.ring.push(addr),
        }
        s.bytes += cost;
        let evicted = s.evict_to(self.shard_capacity, Some(addr));
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Drop `addr`'s entry (write invalidation, or a failed revalidation).
    pub fn invalidate(&self, addr: Addr) {
        let mut s = self.shard(addr).lock();
        if let Some(e) = s.map.remove(&addr) {
            s.bytes -= e.cost;
        }
    }

    /// Drop every listed address — the post-commit choke-point call.
    pub fn invalidate_many(&self, addrs: &[Addr]) {
        for &a in addrs {
            self.invalidate(a);
        }
    }

    /// Drop everything (tests, bench A/B resets).
    pub fn clear(&self) {
        for shard in &self.shards {
            *shard.lock() = Shard::default();
        }
    }

    pub fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            let s = shard.lock();
            entries += s.map.len() as u64;
            bytes += s.bytes as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

impl Shard {
    /// CLOCK sweep until the shard fits in `budget`. `keep` (the entry just
    /// inserted) gets immunity for this sweep so an oversized insert cannot
    /// evict itself and report a phantom hit-rate.
    fn evict_to(&mut self, budget: usize, keep: Option<Addr>) -> u64 {
        let mut evicted = 0u64;
        while self.bytes > budget && self.map.len() > 1 {
            if self.ring.is_empty() {
                break;
            }
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let addr = self.ring[self.hand];
            match self.map.get_mut(&addr) {
                None => {
                    // Stale slot (invalidated entry): discard without
                    // advancing the hand past the swapped-in slot.
                    self.ring.swap_remove(self.hand);
                }
                Some(e) if e.referenced || Some(addr) == keep => {
                    e.referenced = false;
                    self.hand += 1;
                }
                Some(_) => {
                    let e = self.map.remove(&addr).expect("checked above");
                    self.bytes -= e.cost;
                    self.ring.swap_remove(self.hand);
                    evicted += 1;
                }
            }
        }
        // Compact once stale slots dominate the ring, so invalidation-heavy
        // workloads don't grow it without bound.
        if self.ring.len() > 64 && self.ring.len() > 2 * self.map.len() {
            let map = &self.map;
            self.ring.retain(|a| map.contains_key(a));
            self.hand = 0;
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TypeId;
    use a1_farm::{Ptr, RegionId};

    fn addr(i: u32) -> Addr {
        Addr::new(RegionId(1), i * 64)
    }

    fn entry(data_bytes: u32, version: u64) -> CachedVertex {
        let hdr = VertexHeader::new(TypeId(1), Ptr::new(addr(999), data_bytes));
        CachedVertex {
            hdr,
            hdr_version: version,
            data_version: version,
            record: Some(Arc::new(Record::new())),
        }
    }

    #[test]
    fn lookup_respects_snapshot() {
        let c = VertexCache::new(&CacheConfig::default());
        c.insert(addr(1), entry(100, 50));
        // A reader pinned before the entry's version must not see it…
        assert!(c.lookup(addr(1), 49).is_none());
        // …but it stays cached for newer readers.
        assert!(c.lookup(addr(1), 50).is_some());
        assert!(c.lookup(addr(1), 51).is_some());
    }

    #[test]
    fn invalidate_removes() {
        let c = VertexCache::new(&CacheConfig::default());
        c.insert(addr(1), entry(100, 1));
        c.insert(addr(2), entry(100, 1));
        c.invalidate_many(&[addr(1)]);
        assert!(c.lookup(addr(1), 10).is_none());
        assert!(c.lookup(addr(2), 10).is_some());
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn capacity_pressure_evicts() {
        let cfg = CacheConfig {
            capacity_bytes: SHARDS * 4096,
            ..CacheConfig::default()
        };
        let c = VertexCache::new(&cfg);
        for i in 0..256 {
            c.insert(addr(i), entry(2048, 1));
        }
        let st = c.stats();
        assert!(st.evictions > 0, "over-budget inserts must evict");
        assert!(
            st.bytes <= (SHARDS * 4096 + 4096) as u64,
            "stays near budget, got {}",
            st.bytes
        );
        assert!(st.entries < 256);
    }

    #[test]
    fn clock_prefers_unreferenced_victims() {
        let cfg = CacheConfig {
            // One entry (~2160 bytes) per shard fits; a second forces a
            // sweep in that shard.
            capacity_bytes: SHARDS * 2500,
            ..CacheConfig::default()
        };
        let c = VertexCache::new(&cfg);
        for i in 0..512 {
            c.insert(addr(i), entry(2048, 1));
            // Touch everything previously inserted except addr(0): the
            // reference bit should steer the hand toward cold entries.
            if i > 0 && i % 7 != 0 {
                c.lookup(addr(i), 10);
            }
        }
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn reinsert_replaces_and_reaccounts() {
        let c = VertexCache::new(&CacheConfig::default());
        c.insert(addr(1), entry(4096, 1));
        let b1 = c.stats().bytes;
        c.insert(addr(1), entry(64, 2));
        let b2 = c.stats().bytes;
        assert!(b2 < b1, "replacement must not double-count ({b1} -> {b2})");
        assert_eq!(c.stats().entries, 1);
        let got = c.lookup(addr(1), 10).unwrap();
        assert_eq!(got.hdr_version, 2);
    }
}
