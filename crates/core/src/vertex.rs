//! Vertex storage format (paper §3.2, Fig. 6).
//!
//! A vertex is two FaRM objects: a fixed-size **header** and a variable-size
//! **data** object (Bond-serialized attributes). The header holds the type,
//! edge-list references and the data pointer; updates rewrite header fields
//! but never move the header, so the header's address — the *vertex
//! pointer* — is the vertex's stable identity. Header and data are
//! co-located in one region via allocation hints.

use crate::error::{A1Error, A1Result};
use crate::model::TypeId;
use a1_farm::{Addr, Ptr};

/// Payload size of every vertex header object.
pub const VERTEX_HEADER_SIZE: usize = 56;

/// A reference to a vertex's edge list in one direction (§3.2): nothing yet,
/// an inline array object, or spilled into the graph's global edge B-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeListRef {
    Empty,
    /// Small lists: one FaRM object holding an unordered half-edge array.
    Inline(Ptr),
    /// ≥ threshold edges: entries live in the per-graph edge B-tree.
    Tree,
}

impl EdgeListRef {
    fn encode_to(self, out: &mut Vec<u8>) {
        match self {
            EdgeListRef::Empty => {
                out.push(0);
                Ptr::NULL.encode_to(out);
            }
            EdgeListRef::Inline(p) => {
                out.push(1);
                p.encode_to(out);
            }
            EdgeListRef::Tree => {
                out.push(2);
                Ptr::NULL.encode_to(out);
            }
        }
    }

    fn decode(buf: &[u8]) -> Option<EdgeListRef> {
        let tag = *buf.first()?;
        let ptr = Ptr::decode(buf.get(1..)?)?;
        Some(match tag {
            0 => EdgeListRef::Empty,
            1 => EdgeListRef::Inline(ptr),
            2 => EdgeListRef::Tree,
            _ => return None,
        })
    }
}

/// Parsed vertex header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexHeader {
    pub type_id: TypeId,
    /// Number of outgoing/incoming edges (maintained on edge mutations).
    pub out_count: u32,
    pub in_count: u32,
    /// The Bond-serialized attribute object; NULL when the vertex carries no
    /// attributes.
    pub data: Ptr,
    pub out_edges: EdgeListRef,
    pub in_edges: EdgeListRef,
}

impl VertexHeader {
    pub fn new(type_id: TypeId, data: Ptr) -> VertexHeader {
        VertexHeader {
            type_id,
            out_count: 0,
            in_count: 0,
            data,
            out_edges: EdgeListRef::Empty,
            in_edges: EdgeListRef::Empty,
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(VERTEX_HEADER_SIZE);
        out.extend_from_slice(&self.type_id.0.to_le_bytes());
        out.extend_from_slice(&self.out_count.to_le_bytes());
        out.extend_from_slice(&self.in_count.to_le_bytes());
        self.data.encode_to(&mut out);
        self.out_edges.encode_to(&mut out);
        self.in_edges.encode_to(&mut out);
        debug_assert!(out.len() <= VERTEX_HEADER_SIZE);
        out.resize(VERTEX_HEADER_SIZE, 0);
        out
    }

    pub fn decode(buf: &[u8]) -> A1Result<VertexHeader> {
        let err = || A1Error::Internal("corrupt vertex header".into());
        if buf.len() < VERTEX_HEADER_SIZE - 6 {
            return Err(err());
        }
        Ok(VertexHeader {
            type_id: TypeId(u32::from_le_bytes(buf[0..4].try_into().map_err(|_| err())?)),
            out_count: u32::from_le_bytes(buf[4..8].try_into().map_err(|_| err())?),
            in_count: u32::from_le_bytes(buf[8..12].try_into().map_err(|_| err())?),
            data: Ptr::decode(&buf[12..24]).ok_or_else(err)?,
            out_edges: EdgeListRef::decode(&buf[24..37]).ok_or_else(err)?,
            in_edges: EdgeListRef::decode(&buf[37..50]).ok_or_else(err)?,
        })
    }

    pub fn edges(&self, dir: crate::edges::Dir) -> EdgeListRef {
        match dir {
            crate::edges::Dir::Out => self.out_edges,
            crate::edges::Dir::In => self.in_edges,
        }
    }

    pub fn set_edges(&mut self, dir: crate::edges::Dir, r: EdgeListRef) {
        match dir {
            crate::edges::Dir::Out => self.out_edges = r,
            crate::edges::Dir::In => self.in_edges = r,
        }
    }

    pub fn count(&self, dir: crate::edges::Dir) -> u32 {
        match dir {
            crate::edges::Dir::Out => self.out_count,
            crate::edges::Dir::In => self.in_count,
        }
    }

    pub fn bump_count(&mut self, dir: crate::edges::Dir, delta: i64) {
        let c = match dir {
            crate::edges::Dir::Out => &mut self.out_count,
            crate::edges::Dir::In => &mut self.in_count,
        };
        *c = (*c as i64 + delta).max(0) as u32;
    }
}

/// The stable identity of a vertex: a pointer to its header object.
pub fn vertex_ptr(addr: Addr) -> Ptr {
    Ptr::new(addr, VERTEX_HEADER_SIZE as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::Dir;
    use a1_farm::RegionId;

    #[test]
    fn header_roundtrip() {
        let mut h = VertexHeader::new(TypeId(9), Ptr::new(Addr::new(RegionId(2), 320), 120));
        h.out_count = 3;
        h.in_count = 1;
        h.out_edges = EdgeListRef::Inline(Ptr::new(Addr::new(RegionId(2), 448), 104));
        h.in_edges = EdgeListRef::Tree;
        let bytes = h.encode();
        assert_eq!(bytes.len(), VERTEX_HEADER_SIZE);
        assert_eq!(VertexHeader::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn empty_refs() {
        let h = VertexHeader::new(TypeId(1), Ptr::NULL);
        let back = VertexHeader::decode(&h.encode()).unwrap();
        assert_eq!(back.out_edges, EdgeListRef::Empty);
        assert_eq!(back.in_edges, EdgeListRef::Empty);
        assert!(back.data.is_null());
    }

    #[test]
    fn direction_helpers() {
        let mut h = VertexHeader::new(TypeId(1), Ptr::NULL);
        h.set_edges(Dir::Out, EdgeListRef::Tree);
        assert_eq!(h.edges(Dir::Out), EdgeListRef::Tree);
        assert_eq!(h.edges(Dir::In), EdgeListRef::Empty);
        h.bump_count(Dir::In, 2);
        h.bump_count(Dir::In, -1);
        assert_eq!(h.count(Dir::In), 1);
        h.bump_count(Dir::In, -5);
        assert_eq!(h.count(Dir::In), 0, "saturates at zero");
    }

    #[test]
    fn decode_rejects_short() {
        assert!(VertexHeader::decode(&[0; 8]).is_err());
    }
}
