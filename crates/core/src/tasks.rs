//! The asynchronous task framework (paper §3.3).
//!
//! Tasks are units of deferred work stored in a global FaRM-resident queue,
//! visible to every backend; stateless low-priority workers on each machine
//! claim and execute them, re-enqueueing themselves or spawning child tasks
//! for long workflows. `DeleteGraph` → `DeleteType` → batched vertex
//! deletion is the canonical workflow.
//!
//! Claiming moves a task into a *running* set with a lease; if the claiming
//! worker dies, the lease expires and another worker reclaims the task (the
//! paper's "workers save their execution state in FaRM").

use crate::error::{A1Error, A1Result};
use a1_farm::{BTree, BTreeConfig, FarmCluster, Hint, MachineId, Ptr, Txn};
use a1_json::Json;
use std::sync::Arc;

/// Default lease: a worker must finish (or re-enqueue) within this window.
pub const LEASE_MS: u64 = 30_000;

/// A parsed task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskSpec {
    DeleteGraph {
        tenant: String,
        graph: String,
    },
    DeleteType {
        tenant: String,
        graph: String,
        ty: String,
    },
}

impl TaskSpec {
    pub fn to_json(&self) -> Json {
        match self {
            TaskSpec::DeleteGraph { tenant, graph } => Json::obj(vec![
                ("task", Json::str("delete_graph")),
                ("tenant", Json::str(tenant)),
                ("graph", Json::str(graph)),
            ]),
            TaskSpec::DeleteType { tenant, graph, ty } => Json::obj(vec![
                ("task", Json::str("delete_type")),
                ("tenant", Json::str(tenant)),
                ("graph", Json::str(graph)),
                ("type", Json::str(ty)),
            ]),
        }
    }

    pub fn from_json(j: &Json) -> A1Result<TaskSpec> {
        let kind = j
            .get("task")
            .and_then(Json::as_str)
            .ok_or_else(|| A1Error::Internal("task without kind".into()))?;
        let get = |k: &str| -> A1Result<String> {
            Ok(j.get(k)
                .and_then(Json::as_str)
                .ok_or_else(|| A1Error::Internal(format!("task missing '{k}'")))?
                .to_string())
        };
        match kind {
            "delete_graph" => Ok(TaskSpec::DeleteGraph {
                tenant: get("tenant")?,
                graph: get("graph")?,
            }),
            "delete_type" => Ok(TaskSpec::DeleteType {
                tenant: get("tenant")?,
                graph: get("graph")?,
                ty: get("type")?,
            }),
            other => Err(A1Error::Internal(format!("unknown task kind '{other}'"))),
        }
    }
}

/// Lease timestamps come from the cluster clock, not wall time, so task
/// leases expire on virtual time under the simulation harness.
fn now_ms(farm: &FarmCluster) -> u64 {
    farm.fabric().clock().now_ns() / 1_000_000
}

/// The global task queue: pending tree keyed `[priority][seq]`, running tree
/// keyed the same with lease timestamps in the value.
#[derive(Clone)]
pub struct TaskQueue {
    pending: BTree,
    running: BTree,
}

/// A claimed task: execute it, then call [`TaskQueue::complete`].
#[derive(Debug, Clone)]
pub struct ClaimedTask {
    pub key: Vec<u8>,
    pub spec: TaskSpec,
}

impl TaskQueue {
    fn tree_config() -> BTreeConfig {
        BTreeConfig {
            max_keys: 32,
            max_key_len: 16,
            max_val_len: 512,
        }
    }

    pub fn create(farm: &Arc<FarmCluster>) -> A1Result<TaskQueue> {
        let (pending, running) = farm.run(MachineId(0), |tx| {
            let p = BTree::create(tx, Self::tree_config(), Hint::Machine(MachineId(0)))?;
            let r = BTree::create(tx, Self::tree_config(), Hint::Machine(MachineId(0)))?;
            Ok((p, r))
        })?;
        Ok(TaskQueue { pending, running })
    }

    pub fn headers(&self) -> (Ptr, Ptr) {
        (self.pending.header, self.running.header)
    }

    pub fn open(farm: &Arc<FarmCluster>, pending: Ptr, running: Ptr) -> A1Result<TaskQueue> {
        let mut tx = farm.begin_read_only(MachineId(0));
        Ok(TaskQueue {
            pending: BTree::open(&mut tx, pending)?,
            running: BTree::open(&mut tx, running)?,
        })
    }

    /// Enqueue within the caller's transaction (`seq` must be unique —
    /// typically from the catalog id counter).
    pub fn enqueue(&self, tx: &mut Txn, priority: u8, seq: u64, spec: &TaskSpec) -> A1Result<()> {
        let mut key = Vec::with_capacity(9);
        key.push(priority);
        key.extend_from_slice(&seq.to_be_bytes());
        self.pending
            .insert(tx, &key, spec.to_json().to_string().as_bytes())?;
        Ok(())
    }

    /// Claim the front task: atomically move it from pending to running with
    /// a fresh lease. Also reclaims expired running tasks first.
    pub fn claim(
        &self,
        farm: &Arc<FarmCluster>,
        origin: MachineId,
    ) -> A1Result<Option<ClaimedTask>> {
        self.reclaim_expired(farm, origin)?;
        let pending = self.pending.clone();
        let running = self.running.clone();
        let lease_start_ms = now_ms(farm);
        crate::store::run_a1(farm, origin, move |tx| {
            let front = pending.scan(tx, &[], &[], 1)?;
            let Some((key, value)) = front.into_iter().next() else {
                return Ok(None);
            };
            pending.remove(tx, &key)?;
            let body = std::str::from_utf8(&value)
                .map_err(|_| A1Error::Internal("task not utf-8".into()))?;
            let spec_json = Json::parse(body).map_err(|e| A1Error::Internal(e.to_string()))?;
            let spec = TaskSpec::from_json(&spec_json)?;
            let lease = Json::obj(vec![
                ("spec", spec_json.clone()),
                ("lease_ms", Json::Num(lease_start_ms as f64)),
            ]);
            running.insert(tx, &key, lease.to_string().as_bytes())?;
            Ok(Some(ClaimedTask { key, spec }))
        })
    }

    /// Mark a claimed task finished.
    pub fn complete(&self, farm: &Arc<FarmCluster>, origin: MachineId, key: &[u8]) -> A1Result<()> {
        let running = self.running.clone();
        let key = key.to_vec();
        crate::store::run_a1(farm, origin, move |tx| {
            running.remove(tx, &key)?;
            Ok(())
        })
    }

    /// Move running tasks with expired leases back to pending (crashed
    /// workers).
    pub fn reclaim_expired(&self, farm: &Arc<FarmCluster>, origin: MachineId) -> A1Result<usize> {
        let running = self.running.clone();
        let pending = self.pending.clone();
        let now = now_ms(farm);
        crate::store::run_a1(farm, origin, move |tx| {
            let mut reclaimed = 0;
            for (key, value) in running.scan(tx, &[], &[], 64)? {
                let body = std::str::from_utf8(&value)
                    .map_err(|_| A1Error::Internal("task not utf-8".into()))?;
                let j = Json::parse(body).map_err(|e| A1Error::Internal(e.to_string()))?;
                let lease = j.get("lease_ms").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                if now.saturating_sub(lease) > LEASE_MS {
                    let spec = j
                        .get("spec")
                        .ok_or_else(|| A1Error::Internal("running task without spec".into()))?;
                    running.remove(tx, &key)?;
                    pending.insert(tx, &key, spec.to_string().as_bytes())?;
                    reclaimed += 1;
                }
            }
            Ok(reclaimed)
        })
    }

    pub fn pending_count(&self, farm: &Arc<FarmCluster>, origin: MachineId) -> A1Result<usize> {
        let mut tx = farm.begin_read_only(origin);
        Ok(self.pending.len(&mut tx)?)
    }

    pub fn running_count(&self, farm: &Arc<FarmCluster>, origin: MachineId) -> A1Result<usize> {
        let mut tx = farm.begin_read_only(origin);
        Ok(self.running.len(&mut tx)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a1_farm::FarmConfig;

    fn queue() -> (Arc<FarmCluster>, TaskQueue) {
        let farm = FarmCluster::start(FarmConfig::small(2));
        let q = TaskQueue::create(&farm).unwrap();
        (farm, q)
    }

    #[test]
    fn spec_json_roundtrip() {
        for spec in [
            TaskSpec::DeleteGraph {
                tenant: "t".into(),
                graph: "g".into(),
            },
            TaskSpec::DeleteType {
                tenant: "t".into(),
                graph: "g".into(),
                ty: "actor".into(),
            },
        ] {
            assert_eq!(TaskSpec::from_json(&spec.to_json()).unwrap(), spec);
        }
        assert!(TaskSpec::from_json(&Json::obj(vec![("task", Json::str("zz"))])).is_err());
    }

    #[test]
    fn fifo_claim_and_complete() {
        let (farm, q) = queue();
        for i in 0..3u64 {
            let q = q.clone();
            farm.run(MachineId(0), move |tx| {
                q.enqueue(
                    tx,
                    1,
                    i,
                    &TaskSpec::DeleteGraph {
                        tenant: "t".into(),
                        graph: format!("g{i}"),
                    },
                )
                .map_err(|_| a1_farm::FarmError::Conflict)
            })
            .unwrap();
        }
        assert_eq!(q.pending_count(&farm, MachineId(0)).unwrap(), 3);

        let t0 = q.claim(&farm, MachineId(1)).unwrap().unwrap();
        assert_eq!(
            t0.spec,
            TaskSpec::DeleteGraph {
                tenant: "t".into(),
                graph: "g0".into()
            }
        );
        assert_eq!(q.pending_count(&farm, MachineId(0)).unwrap(), 2);
        assert_eq!(q.running_count(&farm, MachineId(0)).unwrap(), 1);

        q.complete(&farm, MachineId(1), &t0.key).unwrap();
        assert_eq!(q.running_count(&farm, MachineId(0)).unwrap(), 0);

        // Priority 0 jumps the queue.
        let q2 = q.clone();
        farm.run(MachineId(0), move |tx| {
            q2.enqueue(
                tx,
                0,
                99,
                &TaskSpec::DeleteType {
                    tenant: "t".into(),
                    graph: "g".into(),
                    ty: "x".into(),
                },
            )
            .map_err(|_| a1_farm::FarmError::Conflict)
        })
        .unwrap();
        let t = q.claim(&farm, MachineId(0)).unwrap().unwrap();
        assert!(matches!(t.spec, TaskSpec::DeleteType { .. }));
        q.complete(&farm, MachineId(0), &t.key).unwrap();

        // Drain the rest.
        while let Some(t) = q.claim(&farm, MachineId(0)).unwrap() {
            q.complete(&farm, MachineId(0), &t.key).unwrap();
        }
        assert_eq!(q.pending_count(&farm, MachineId(0)).unwrap(), 0);
    }

    #[test]
    fn empty_queue_claims_none() {
        let (farm, q) = queue();
        assert!(q.claim(&farm, MachineId(0)).unwrap().is_none());
    }
}
