//! The catalog: the root of all A1 data structures (paper §3.1).
//!
//! A key-value store (a FaRM B-tree) mapping object names to the metadata
//! needed to access them — for a B-tree that is the FaRM address of its
//! header. The catalog itself is anchored in the FaRM cluster's well-known
//! root object.
//!
//! Catalog lookups are expensive (multiple reads), so materialized handles
//! ("proxies") are cached per backend with a TTL; on expiry the proxy is
//! re-materialized if the underlying entry changed (§3.1).

use crate::error::{A1Error, A1Result};
use crate::model::{type_kind, EdgeTypeDef, GraphMeta, VertexTypeDef};
use a1_farm::{BTree, BTreeConfig, FarmCluster, Hint, MachineId, Ptr, Txn};
use a1_json::Json;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const ROOT_MAGIC: u32 = 0xA1A1_0001;

/// Namespace prefixes for catalog keys.
fn tenant_key(tenant: &str) -> Vec<u8> {
    format!("t/{tenant}").into_bytes()
}

pub fn graph_key(tenant: &str, graph: &str) -> Vec<u8> {
    format!("g/{tenant}/{graph}").into_bytes()
}

pub fn type_key(tenant: &str, graph: &str, ty: &str) -> Vec<u8> {
    format!("y/{tenant}/{graph}/{ty}").into_bytes()
}

pub fn types_prefix(tenant: &str, graph: &str) -> Vec<u8> {
    format!("y/{tenant}/{graph}/").into_bytes()
}

/// The catalog handle: the catalog B-tree plus the id-counter object.
#[derive(Clone)]
pub struct Catalog {
    tree: BTree,
    counter: Ptr,
}

impl Catalog {
    /// B-tree shape for the catalog: few, fat nodes (values are JSON blobs).
    fn tree_config() -> BTreeConfig {
        BTreeConfig {
            max_keys: 16,
            max_key_len: 200,
            max_val_len: 4096,
        }
    }

    /// Create the catalog during cluster bootstrap and anchor it in the
    /// FaRM root object: `[magic][catalog tree ptr][id counter ptr]`.
    pub fn bootstrap(farm: &Arc<FarmCluster>) -> A1Result<Catalog> {
        let root = farm.root_ptr();
        let origin = MachineId(0);
        let catalog = farm.run(origin, |tx| {
            let tree = BTree::create(tx, Self::tree_config(), Hint::Machine(origin))?;
            let counter = tx.alloc(8, Hint::Machine(origin), &1u64.to_le_bytes())?;
            let root_buf = tx.read(root)?;
            let mut payload = vec![0u8; root_buf.len()];
            payload[0..4].copy_from_slice(&ROOT_MAGIC.to_le_bytes());
            let mut cursor = Vec::new();
            tree.header.encode_to(&mut cursor);
            counter.encode_to(&mut cursor);
            payload[4..4 + cursor.len()].copy_from_slice(&cursor);
            tx.update(&root_buf, payload)?;
            Ok(Catalog {
                tree: tree.clone(),
                counter,
            })
        })?;
        Ok(catalog)
    }

    /// Open an existing catalog from the root object (e.g. after restart).
    pub fn open(farm: &Arc<FarmCluster>, origin: MachineId) -> A1Result<Catalog> {
        let root = farm.root_ptr();
        let mut tx = farm.begin_read_only(origin);
        let buf = tx.read(root)?;
        let data = buf.data();
        if data.len() < 4 + 2 * Ptr::ENCODED_LEN
            || u32::from_le_bytes(data[0..4].try_into().unwrap()) != ROOT_MAGIC
        {
            return Err(A1Error::Internal("cluster has no catalog".into()));
        }
        let tree_ptr =
            Ptr::decode(&data[4..16]).ok_or_else(|| A1Error::Internal("bad root".into()))?;
        let counter =
            Ptr::decode(&data[16..28]).ok_or_else(|| A1Error::Internal("bad root".into()))?;
        drop(tx);
        let mut tx = farm.begin_read_only(origin);
        let tree = BTree::open(&mut tx, tree_ptr)?;
        Ok(Catalog { tree, counter })
    }

    /// Allocate a cluster-unique id (graph ids, task sequence numbers).
    pub fn next_id(&self, tx: &mut Txn) -> A1Result<u64> {
        let buf = tx.read(self.counter)?;
        let v = u64::from_le_bytes(
            buf.data()[..8]
                .try_into()
                .map_err(|_| A1Error::Internal("bad counter".into()))?,
        );
        tx.update(&buf, (v + 1).to_le_bytes().to_vec())?;
        Ok(v)
    }

    pub fn put(&self, tx: &mut Txn, key: &[u8], value: &Json) -> A1Result<()> {
        self.tree.insert(tx, key, value.to_string().as_bytes())?;
        Ok(())
    }

    pub fn get(&self, tx: &mut Txn, key: &[u8]) -> A1Result<Option<Json>> {
        match self.tree.get(tx, key)? {
            Some(bytes) => {
                let text = String::from_utf8(bytes)
                    .map_err(|_| A1Error::Internal("catalog value not utf-8".into()))?;
                Ok(Some(
                    Json::parse(&text).map_err(|e| A1Error::Internal(e.to_string()))?,
                ))
            }
            None => Ok(None),
        }
    }

    pub fn remove(&self, tx: &mut Txn, key: &[u8]) -> A1Result<bool> {
        Ok(self.tree.remove(tx, key)?.is_some())
    }

    pub fn list_prefix(&self, tx: &mut Txn, prefix: &[u8]) -> A1Result<Vec<(String, Json)>> {
        self.tree
            .scan_prefix(tx, prefix, usize::MAX)?
            .into_iter()
            .map(|(k, v)| {
                let key = String::from_utf8(k)
                    .map_err(|_| A1Error::Internal("catalog key not utf-8".into()))?;
                let text = String::from_utf8(v)
                    .map_err(|_| A1Error::Internal("catalog value not utf-8".into()))?;
                Ok((
                    key,
                    Json::parse(&text).map_err(|e| A1Error::Internal(e.to_string()))?,
                ))
            })
            .collect()
    }

    // ---- typed helpers ----

    pub fn put_tenant(&self, tx: &mut Txn, tenant: &str) -> A1Result<()> {
        self.put(
            tx,
            &tenant_key(tenant),
            &Json::obj(vec![("name", Json::str(tenant))]),
        )
    }

    pub fn tenant_exists(&self, tx: &mut Txn, tenant: &str) -> A1Result<bool> {
        Ok(self.get(tx, &tenant_key(tenant))?.is_some())
    }

    pub fn put_graph(&self, tx: &mut Txn, meta: &GraphMeta) -> A1Result<()> {
        self.put(tx, &graph_key(&meta.tenant, &meta.name), &meta.to_json())
    }

    pub fn get_graph(
        &self,
        tx: &mut Txn,
        tenant: &str,
        graph: &str,
    ) -> A1Result<Option<GraphMeta>> {
        match self.get(tx, &graph_key(tenant, graph))? {
            Some(j) => Ok(Some(GraphMeta::from_json(&j)?)),
            None => Ok(None),
        }
    }

    pub fn put_vertex_type(
        &self,
        tx: &mut Txn,
        tenant: &str,
        graph: &str,
        def: &VertexTypeDef,
    ) -> A1Result<()> {
        self.put(tx, &type_key(tenant, graph, &def.name), &def.to_json())
    }

    pub fn put_edge_type(
        &self,
        tx: &mut Txn,
        tenant: &str,
        graph: &str,
        def: &EdgeTypeDef,
    ) -> A1Result<()> {
        self.put(tx, &type_key(tenant, graph, &def.name), &def.to_json())
    }

    /// All type entries of a graph: (name, kind, json).
    pub fn list_types(
        &self,
        tx: &mut Txn,
        tenant: &str,
        graph: &str,
    ) -> A1Result<Vec<(String, String, Json)>> {
        let prefix = types_prefix(tenant, graph);
        Ok(self
            .list_prefix(tx, &prefix)?
            .into_iter()
            .filter_map(|(k, j)| {
                let name = k.rsplit('/').next()?.to_string();
                let kind = type_kind(&j)?.to_string();
                Some((name, kind, j))
            })
            .collect())
    }
}

/// A materialized vertex type: definition plus opened index trees.
#[derive(Clone)]
pub struct VertexProxy {
    pub def: VertexTypeDef,
    pub primary: BTree,
    pub secondaries: Vec<(u16, BTree)>,
}

/// A materialized edge type.
#[derive(Clone)]
pub struct EdgeProxy {
    pub def: EdgeTypeDef,
}

/// A materialized graph: metadata plus the opened global edge tree.
#[derive(Clone)]
pub struct GraphProxy {
    pub meta: GraphMeta,
    pub edge_tree: BTree,
}

/// All proxies for one graph, as the query engine wants them.
#[derive(Clone)]
pub struct GraphProxies {
    pub graph: GraphProxy,
    pub vertex_types: Vec<Arc<VertexProxy>>,
    pub edge_types: Vec<Arc<EdgeProxy>>,
}

impl GraphProxies {
    pub fn vertex_type(&self, name: &str) -> Option<&Arc<VertexProxy>> {
        self.vertex_types.iter().find(|p| p.def.name == name)
    }

    pub fn vertex_type_by_id(&self, id: crate::model::TypeId) -> Option<&Arc<VertexProxy>> {
        self.vertex_types.iter().find(|p| p.def.id == id)
    }

    pub fn edge_type(&self, name: &str) -> Option<&Arc<EdgeProxy>> {
        self.edge_types.iter().find(|p| p.def.name == name)
    }

    pub fn edge_type_by_id(&self, id: crate::model::TypeId) -> Option<&Arc<EdgeProxy>> {
        self.edge_types.iter().find(|p| p.def.id == id)
    }
}

/// Per-backend proxy cache with TTL (§3.1). Entry timestamps come from the
/// cluster clock so expiry runs on virtual time under simulation.
pub struct ProxyCache {
    ttl: Duration,
    graphs: Mutex<HashMap<String, (u64, Arc<GraphProxies>)>>,
}

impl ProxyCache {
    pub fn new(ttl: Duration) -> ProxyCache {
        ProxyCache {
            ttl,
            graphs: Mutex::new(HashMap::new()),
        }
    }

    /// Materialize (or fetch cached) proxies for a graph.
    pub fn graph(
        &self,
        farm: &Arc<FarmCluster>,
        catalog: &Catalog,
        origin: MachineId,
        tenant: &str,
        graph: &str,
    ) -> A1Result<Arc<GraphProxies>> {
        let cache_key = format!("{tenant}/{graph}");
        let now_ns = farm.fabric().clock().now_ns();
        if let Some((at_ns, proxies)) = self.graphs.lock().get(&cache_key) {
            if now_ns.saturating_sub(*at_ns) < self.ttl.as_nanos() as u64 {
                return Ok(proxies.clone());
            }
        }
        let proxies = Arc::new(Self::materialize(farm, catalog, origin, tenant, graph)?);
        self.graphs
            .lock()
            .insert(cache_key, (now_ns, proxies.clone()));
        Ok(proxies)
    }

    /// Drop a graph's cached proxies (schema changes, deletions).
    pub fn invalidate(&self, tenant: &str, graph: &str) {
        self.graphs.lock().remove(&format!("{tenant}/{graph}"));
    }

    fn materialize(
        farm: &Arc<FarmCluster>,
        catalog: &Catalog,
        origin: MachineId,
        tenant: &str,
        graph: &str,
    ) -> A1Result<GraphProxies> {
        let mut tx = farm.begin_read_only(origin);
        let meta = catalog
            .get_graph(&mut tx, tenant, graph)?
            .ok_or_else(|| A1Error::NoSuchGraph(graph.to_string()))?;
        let edge_tree = BTree::open(&mut tx, meta.edge_tree)?;
        let mut vertex_types = Vec::new();
        let mut edge_types = Vec::new();
        for (_, kind, j) in catalog.list_types(&mut tx, tenant, graph)? {
            match kind.as_str() {
                "vertex" => {
                    let def = VertexTypeDef::from_json(&j)?;
                    let primary = BTree::open(&mut tx, def.primary_index)?;
                    let secondaries = def
                        .secondary_indexes
                        .iter()
                        .map(|(f, p)| Ok((*f, BTree::open(&mut tx, *p)?)))
                        .collect::<A1Result<Vec<_>>>()?;
                    vertex_types.push(Arc::new(VertexProxy {
                        def,
                        primary,
                        secondaries,
                    }));
                }
                "edge" => {
                    edge_types.push(Arc::new(EdgeProxy {
                        def: EdgeTypeDef::from_json(&j)?,
                    }));
                }
                _ => {}
            }
        }
        Ok(GraphProxies {
            graph: GraphProxy { meta, edge_tree },
            vertex_types,
            edge_types,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a1_farm::FarmConfig;

    #[test]
    fn bootstrap_put_get_list() {
        let farm = FarmCluster::start(FarmConfig::small(2));
        let cat = Catalog::bootstrap(&farm).unwrap();

        farm.run(MachineId(0), |tx| {
            cat.put_tenant(tx, "bing")
                .map_err(|_| a1_farm::FarmError::Conflict)
        })
        .unwrap();
        let mut tx = farm.begin_read_only(MachineId(1));
        assert!(cat.tenant_exists(&mut tx, "bing").unwrap());
        assert!(!cat.tenant_exists(&mut tx, "nope").unwrap());
        drop(tx);

        // Reopen from the root object.
        let cat2 = Catalog::open(&farm, MachineId(1)).unwrap();
        let mut tx = farm.begin_read_only(MachineId(1));
        assert!(cat2.tenant_exists(&mut tx, "bing").unwrap());
    }

    #[test]
    fn id_counter_increments() {
        let farm = FarmCluster::start(FarmConfig::small(1));
        let cat = Catalog::bootstrap(&farm).unwrap();
        let mut ids = Vec::new();
        for _ in 0..5 {
            let cat = cat.clone();
            let id = farm
                .run(MachineId(0), move |tx| {
                    cat.next_id(tx).map_err(|_| a1_farm::FarmError::Conflict)
                })
                .unwrap();
            ids.push(id);
        }
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn key_layout() {
        assert_eq!(graph_key("t", "g"), b"g/t/g".to_vec());
        assert_eq!(type_key("t", "g", "actor"), b"y/t/g/actor".to_vec());
        assert!(type_key("t", "g", "actor").starts_with(&types_prefix("t", "g")));
    }
}
