//! Conversions between Bond values/records/schemas and JSON.
//!
//! JSON is A1's external surface (A1QL queries, client payloads, catalog
//! blobs, RPC envelopes); Bond is the internal storage format (§3). These
//! conversions are schema-directed on the way in — `"3"` vs `3` must land as
//! the declared field type — and lossless on the way out for everything the
//! knowledge-graph workloads use.

use crate::error::{A1Error, A1Result};
use a1_bond::{BondType, FieldDef, Record, Schema, Value};
use a1_json::Json;

/// Bond value → JSON. Large 64-bit integers that exceed the f64-safe range
/// are rendered as strings to avoid silent precision loss.
pub fn value_to_json(v: &Value) -> Json {
    const SAFE: i64 = 1 << 53;
    match v {
        Value::Bool(b) => Json::Bool(*b),
        Value::Int32(n) => Json::Num(*n as f64),
        Value::Int64(n) | Value::Date(n) => {
            if n.abs() < SAFE {
                Json::Num(*n as f64)
            } else {
                Json::Str(n.to_string())
            }
        }
        Value::UInt64(n) => {
            if *n < SAFE as u64 {
                Json::Num(*n as f64)
            } else {
                Json::Str(n.to_string())
            }
        }
        Value::Double(d) => Json::Num(*d),
        Value::String(s) => Json::Str(s.clone()),
        Value::Blob(b) => Json::obj(vec![("_blob", Json::Str(hex_encode(b)))]),
        Value::List(items) => Json::Arr(items.iter().map(value_to_json).collect()),
        Value::Map(pairs) => {
            // String-keyed maps become objects; anything else, pair arrays.
            if pairs.iter().all(|(k, _)| matches!(k, Value::String(_))) {
                Json::Obj(
                    pairs
                        .iter()
                        .map(|(k, v)| (k.as_str().expect("checked").to_string(), value_to_json(v)))
                        .collect(),
                )
            } else {
                Json::obj(vec![(
                    "_map",
                    Json::Arr(
                        pairs
                            .iter()
                            .map(|(k, v)| Json::Arr(vec![value_to_json(k), value_to_json(v)]))
                            .collect(),
                    ),
                )])
            }
        }
    }
}

/// JSON → Bond value of a declared type.
pub fn json_to_value(j: &Json, ty: &BondType) -> A1Result<Value> {
    let err = || A1Error::Schema(format!("cannot convert {j} to {ty}"));
    Ok(match ty {
        BondType::Bool => Value::Bool(j.as_bool().ok_or_else(err)?),
        BondType::Int32 => Value::Int32(j.as_i64().ok_or_else(err)? as i32),
        BondType::Int64 => Value::Int64(json_i64(j).ok_or_else(err)?),
        BondType::Date => Value::Date(json_i64(j).ok_or_else(err)?),
        BondType::UInt64 => {
            let v = match j {
                Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => *n as u64,
                Json::Str(s) => s.parse().map_err(|_| err())?,
                _ => return Err(err()),
            };
            Value::UInt64(v)
        }
        BondType::Double => Value::Double(j.as_f64().ok_or_else(err)?),
        BondType::String => Value::String(j.as_str().ok_or_else(err)?.to_string()),
        BondType::Blob => {
            let hexs = j.get("_blob").and_then(Json::as_str).ok_or_else(err)?;
            Value::Blob(hex_decode(hexs).ok_or_else(err)?)
        }
        BondType::List(elem) => Value::List(
            j.as_arr()
                .ok_or_else(err)?
                .iter()
                .map(|item| json_to_value(item, elem))
                .collect::<A1Result<Vec<_>>>()?,
        ),
        BondType::Map(k, v) => match j {
            Json::Obj(pairs) if matches!(**k, BondType::String) => Value::Map(
                pairs
                    .iter()
                    .map(|(pk, pv)| Ok((Value::String(pk.clone()), json_to_value(pv, v)?)))
                    .collect::<A1Result<Vec<_>>>()?,
            ),
            _ => {
                let arr = j.get("_map").and_then(Json::as_arr).ok_or_else(err)?;
                Value::Map(
                    arr.iter()
                        .map(|pair| {
                            let pk = pair.at(0).ok_or_else(err)?;
                            let pv = pair.at(1).ok_or_else(err)?;
                            Ok((json_to_value(pk, k)?, json_to_value(pv, v)?))
                        })
                        .collect::<A1Result<Vec<_>>>()?,
                )
            }
        },
    })
}

fn json_i64(j: &Json) -> Option<i64> {
    match j {
        Json::Num(_) => j.as_i64(),
        Json::Str(s) => s.parse().ok(),
        _ => None,
    }
}

/// JSON object → validated record (schema-directed; unknown keys rejected).
pub fn record_from_json(schema: &Schema, j: &Json) -> A1Result<Record> {
    let obj = j
        .as_obj()
        .ok_or_else(|| A1Error::Schema("record must be a JSON object".into()))?;
    let mut rec = Record::new();
    for (k, v) in obj {
        let field = schema
            .field_by_name(k)
            .ok_or_else(|| A1Error::Schema(format!("unknown attribute '{k}'")))?;
        if v.is_null() {
            continue; // null = absent
        }
        rec.set(field.id, json_to_value(v, &field.ty)?);
    }
    schema.validate(&rec)?;
    Ok(rec)
}

/// Record → JSON object with attribute names from the schema.
pub fn record_to_json(schema: &Schema, rec: &Record) -> Json {
    Json::Obj(
        rec.fields()
            .iter()
            .filter_map(|(id, v)| {
                schema
                    .field(*id)
                    .map(|f| (f.name.clone(), value_to_json(v)))
            })
            .collect(),
    )
}

/// Schema → catalog JSON.
pub fn schema_to_json(s: &Schema) -> Json {
    Json::obj(vec![
        ("name", Json::str(s.name())),
        (
            "fields",
            Json::Arr(
                s.fields()
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("id", Json::Num(f.id as f64)),
                            ("name", Json::str(&f.name)),
                            ("type", Json::str(&f.ty.to_string())),
                            ("required", Json::Bool(f.required)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Catalog JSON → schema. Also accepts the user-facing shorthand used by the
/// client API: `{"name": "Actor", "fields": [...]}` with textual types.
pub fn json_to_schema(j: &Json) -> A1Result<Schema> {
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| A1Error::Schema("schema needs a name".into()))?;
    let fields = j
        .get("fields")
        .and_then(Json::as_arr)
        .ok_or_else(|| A1Error::Schema("schema needs fields".into()))?;
    let defs = fields
        .iter()
        .map(|f| {
            let id = f
                .get("id")
                .and_then(Json::as_f64)
                .ok_or_else(|| A1Error::Schema("field needs an id".into()))?
                as u16;
            let fname = f
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| A1Error::Schema("field needs a name".into()))?;
            let tname = f
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| A1Error::Schema("field needs a type".into()))?;
            let ty = BondType::parse(tname)
                .ok_or_else(|| A1Error::Schema(format!("unknown type '{tname}'")))?;
            let required = f.get("required").and_then(Json::as_bool).unwrap_or(false);
            Ok(FieldDef {
                id,
                name: fname.to_string(),
                ty,
                required,
            })
        })
        .collect::<A1Result<Vec<_>>>()?;
    Schema::build(name, defs).map_err(Into::into)
}

fn hex_encode(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::build(
            "entity",
            vec![
                FieldDef::required(0, "id", BondType::String),
                FieldDef::optional(1, "name", BondType::List(Box::new(BondType::String))),
                FieldDef::optional(2, "rank", BondType::Int64),
                FieldDef::optional(3, "score", BondType::Double),
                FieldDef::optional(
                    4,
                    "str_str_map",
                    BondType::Map(Box::new(BondType::String), Box::new(BondType::String)),
                ),
                FieldDef::optional(5, "raw", BondType::Blob),
                FieldDef::optional(6, "born", BondType::Date),
            ],
        )
        .unwrap()
    }

    #[test]
    fn record_json_roundtrip() {
        let s = schema();
        let j = Json::parse(
            r#"{"id":"x","name":["A","B"],"rank":7,"score":1.5,
                "str_str_map":{"k":"v"},"raw":{"_blob":"00ff"},"born":-4930}"#,
        )
        .unwrap();
        let rec = record_from_json(&s, &j).unwrap();
        assert_eq!(rec.get(0), Some(&Value::String("x".into())));
        assert_eq!(rec.get(2), Some(&Value::Int64(7)));
        assert_eq!(rec.get(5), Some(&Value::Blob(vec![0, 255])));
        assert_eq!(rec.get(6), Some(&Value::Date(-4930)));
        let back = record_to_json(&s, &rec);
        assert_eq!(back.get("id").unwrap().as_str(), Some("x"));
        assert_eq!(back.get("rank").unwrap().as_i64(), Some(7));
        assert_eq!(
            back.get("str_str_map").unwrap().get("k").unwrap().as_str(),
            Some("v")
        );
        assert_eq!(
            back.get("raw").unwrap().get("_blob").unwrap().as_str(),
            Some("00ff")
        );
        // Round-trip again through record_from_json.
        let rec2 = record_from_json(&s, &back).unwrap();
        assert_eq!(rec2, rec);
    }

    #[test]
    fn unknown_attribute_rejected() {
        let s = schema();
        let j = Json::parse(r#"{"id":"x","bogus":1}"#).unwrap();
        assert!(matches!(record_from_json(&s, &j), Err(A1Error::Schema(_))));
    }

    #[test]
    fn missing_required_rejected() {
        let s = schema();
        let j = Json::parse(r#"{"rank":1}"#).unwrap();
        assert!(record_from_json(&s, &j).is_err());
        // Null counts as absent.
        let j = Json::parse(r#"{"id":null}"#).unwrap();
        assert!(record_from_json(&s, &j).is_err());
    }

    #[test]
    fn type_coercion_errors() {
        let s = schema();
        let j = Json::parse(r#"{"id":3}"#).unwrap();
        assert!(record_from_json(&s, &j).is_err());
        let j = Json::parse(r#"{"id":"x","rank":"not-a-number"}"#).unwrap();
        assert!(record_from_json(&s, &j).is_err());
    }

    #[test]
    fn big_int64_via_string() {
        let s = schema();
        let big = (1i64 << 60).to_string();
        let j = Json::Obj(vec![
            ("id".to_string(), Json::str("x")),
            ("rank".to_string(), Json::Str(big.clone())),
        ]);
        let rec = record_from_json(&s, &j).unwrap();
        assert_eq!(rec.get(2), Some(&Value::Int64(1 << 60)));
        let back = record_to_json(&s, &rec);
        assert_eq!(back.get("rank").unwrap().as_str(), Some(big.as_str()));
    }

    #[test]
    fn schema_json_roundtrip() {
        let s = schema();
        let j = schema_to_json(&s);
        let back = json_to_schema(&j).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn hex_roundtrip() {
        assert_eq!(
            hex_decode(&hex_encode(&[0, 1, 254, 255])),
            Some(vec![0, 1, 254, 255])
        );
        assert_eq!(hex_decode("0"), None);
        assert_eq!(hex_decode("zz"), None);
    }
}
