//! Timestamped-row tables (best-effort recovery scheme, §4).

use parking_lot::RwLock;
use std::collections::BTreeMap;

/// One row: the latest value and the transaction timestamp that wrote it.
/// `tombstone` rows record deletes until garbage collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    pub value: Vec<u8>,
    pub ts: u64,
    pub tombstone: bool,
}

/// A sorted key→row table where writes carry transaction timestamps and only
/// newer timestamps win. This makes replication idempotent: flushing a log
/// entry twice, or out of order, converges to the same state (§4).
#[derive(Debug, Default)]
pub struct Table {
    rows: RwLock<BTreeMap<Vec<u8>, Row>>,
}

impl Table {
    pub fn new() -> Table {
        Table::default()
    }

    /// Upsert if `ts` is strictly newer than the stored row (or the key is
    /// absent). Returns whether the write was applied.
    pub fn put_if_newer(&self, key: &[u8], value: Vec<u8>, ts: u64) -> bool {
        let mut rows = self.rows.write();
        match rows.get(key) {
            Some(row) if row.ts >= ts => false,
            _ => {
                rows.insert(
                    key.to_vec(),
                    Row {
                        value,
                        ts,
                        tombstone: false,
                    },
                );
                true
            }
        }
    }

    /// Record a delete as a tombstone if `ts` is newer.
    pub fn delete_if_newer(&self, key: &[u8], ts: u64) -> bool {
        let mut rows = self.rows.write();
        match rows.get(key) {
            Some(row) if row.ts >= ts => false,
            _ => {
                rows.insert(
                    key.to_vec(),
                    Row {
                        value: Vec::new(),
                        ts,
                        tombstone: true,
                    },
                );
                true
            }
        }
    }

    /// Latest live row for a key (tombstones read as absent).
    pub fn get(&self, key: &[u8]) -> Option<Row> {
        let rows = self.rows.read();
        let row = rows.get(key)?;
        if row.tombstone {
            None
        } else {
            Some(row.clone())
        }
    }

    /// Raw row including tombstones (recovery inspects these).
    pub fn get_raw(&self, key: &[u8]) -> Option<Row> {
        self.rows.read().get(key).cloned()
    }

    /// All live rows, in key order.
    pub fn scan_live(&self) -> Vec<(Vec<u8>, Row)> {
        self.rows
            .read()
            .iter()
            .filter(|(_, r)| !r.tombstone)
            .map(|(k, r)| (k.clone(), r.clone()))
            .collect()
    }

    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.read().is_empty()
    }

    /// Drop tombstones older than `before_ts` (the offline GC process that
    /// removes tombstones "older than a week", §4).
    pub fn gc_tombstones(&self, before_ts: u64) -> usize {
        let mut rows = self.rows.write();
        let doomed: Vec<Vec<u8>> = rows
            .iter()
            .filter(|(_, r)| r.tombstone && r.ts < before_ts)
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            rows.remove(k);
        }
        doomed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_wins_older_discarded() {
        let t = Table::new();
        assert!(t.put_if_newer(b"v1", b"a".to_vec(), 10));
        // Stale update (an out-of-order log flush) is discarded.
        assert!(!t.put_if_newer(b"v1", b"stale".to_vec(), 5));
        assert_eq!(t.get(b"v1").unwrap().value, b"a".to_vec());
        // Newer update applies.
        assert!(t.put_if_newer(b"v1", b"b".to_vec(), 20));
        assert_eq!(t.get(b"v1").unwrap().value, b"b".to_vec());
        // Equal timestamp is idempotent (already applied).
        assert!(!t.put_if_newer(b"v1", b"b".to_vec(), 20));
    }

    #[test]
    fn paper_example_v1_then_v2() {
        // §4: "if we stored value v1 in vertex V and then v2 ... eventually
        // ObjectStore must reflect v2" — regardless of flush order.
        let forward = Table::new();
        forward.put_if_newer(b"V", b"v1".to_vec(), 1);
        forward.put_if_newer(b"V", b"v2".to_vec(), 2);
        let reversed = Table::new();
        reversed.put_if_newer(b"V", b"v2".to_vec(), 2);
        reversed.put_if_newer(b"V", b"v1".to_vec(), 1);
        assert_eq!(forward.get(b"V"), reversed.get(b"V"));
        assert_eq!(forward.get(b"V").unwrap().value, b"v2".to_vec());
    }

    #[test]
    fn tombstones() {
        let t = Table::new();
        t.put_if_newer(b"k", b"v".to_vec(), 10);
        assert!(t.delete_if_newer(b"k", 20));
        assert!(t.get(b"k").is_none());
        assert!(t.get_raw(b"k").unwrap().tombstone);
        // Late stale write doesn't resurrect.
        assert!(!t.put_if_newer(b"k", b"zombie".to_vec(), 15));
        assert!(t.get(b"k").is_none());
        // Recreate with newer timestamp replaces the tombstone.
        assert!(t.put_if_newer(b"k", b"new".to_vec(), 30));
        assert_eq!(t.get(b"k").unwrap().value, b"new".to_vec());
    }

    #[test]
    fn tombstone_gc() {
        let t = Table::new();
        t.put_if_newer(b"a", b"1".to_vec(), 1);
        t.delete_if_newer(b"a", 5);
        t.put_if_newer(b"b", b"2".to_vec(), 2);
        t.delete_if_newer(b"b", 50);
        assert_eq!(t.gc_tombstones(10), 1); // only a's tombstone is old enough
        assert!(t.get_raw(b"a").is_none());
        assert!(t.get_raw(b"b").unwrap().tombstone);
        assert_eq!(t.len(), 1); // only b's (young) tombstone remains
    }

    #[test]
    fn scan_live_sorted_skips_tombstones() {
        let t = Table::new();
        t.put_if_newer(b"c", b"3".to_vec(), 1);
        t.put_if_newer(b"a", b"1".to_vec(), 1);
        t.put_if_newer(b"b", b"2".to_vec(), 1);
        t.delete_if_newer(b"b", 2);
        let live = t.scan_live();
        let keys: Vec<&[u8]> = live.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"c".as_slice()]);
    }
}
