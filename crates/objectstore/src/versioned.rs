//! Versioned tables: ⟨(key, timestamp) → value⟩ rows for consistent
//! recovery (§4). Every write inserts a new version; deletes insert
//! tombstone versions; snapshot reads pick the latest version at or below a
//! timestamp.

use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Composite row key: (user key, timestamp).
type RowKey = (Vec<u8>, u64);
/// A stored version; `None` is a delete tombstone.
type Version = Option<Vec<u8>>;

/// Multi-version table. The composite row key is (user key, timestamp),
/// which ObjectStore's sorted iteration makes cheap to query per key.
#[derive(Debug, Default)]
pub struct VersionedTable {
    rows: RwLock<BTreeMap<RowKey, Version>>,
}

impl VersionedTable {
    pub fn new() -> VersionedTable {
        VersionedTable::default()
    }

    /// Insert a version. `None` is a delete tombstone. Idempotent: the same
    /// (key, ts) written twice converges.
    pub fn put(&self, key: &[u8], ts: u64, value: Option<Vec<u8>>) {
        self.rows.write().insert((key.to_vec(), ts), value);
    }

    /// The latest live value for `key` at or below `ts`.
    pub fn get_at(&self, key: &[u8], ts: u64) -> Option<Vec<u8>> {
        let rows = self.rows.read();
        rows.range((key.to_vec(), 0)..=(key.to_vec(), ts))
            .next_back()
            .and_then(|(_, v)| v.clone())
    }

    /// Latest version regardless of time.
    pub fn get_latest(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.get_at(key, u64::MAX)
    }

    /// Iterate the snapshot at `ts`: every key's newest version ≤ ts that is
    /// not a tombstone, in key order. This is the consistent-recovery scan.
    pub fn scan_at(&self, ts: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
        let rows = self.rows.read();
        let mut out = Vec::new();
        let mut current: Option<(&Vec<u8>, u64, &Version)> = None;
        for ((k, vts), v) in rows.iter() {
            if *vts > ts {
                continue;
            }
            match current {
                Some((ck, cts, _)) if ck == k => {
                    if *vts >= cts {
                        current = Some((k, *vts, v));
                    }
                }
                Some((ck, _, cv)) => {
                    debug_assert!(ck < k);
                    if let Some(val) = cv {
                        out.push((ck.clone(), val.clone()));
                    }
                    current = Some((k, *vts, v));
                }
                None => current = Some((k, *vts, v)),
            }
        }
        if let Some((ck, _, Some(val))) = current {
            out.push((ck.clone(), val.clone()));
        }
        out
    }

    /// Number of stored versions (diagnostics).
    pub fn version_count(&self) -> usize {
        self.rows.read().len()
    }

    /// Drop versions older than `before_ts` that are shadowed by a newer
    /// version also older than `before_ts` (plus tombstone cleanup).
    pub fn gc_versions(&self, before_ts: u64) -> usize {
        let mut rows = self.rows.write();
        let keys: Vec<(Vec<u8>, u64)> = rows.keys().cloned().collect();
        let mut dropped = 0;
        let mut prev: Option<(Vec<u8>, u64)> = None;
        for (k, ts) in keys {
            if let Some((pk, pts)) = &prev {
                // prev is shadowed by (k, ts) if same key and both < before.
                if *pk == k && *pts < before_ts && ts < before_ts {
                    rows.remove(&(pk.clone(), *pts));
                    dropped += 1;
                }
            }
            prev = Some((k, ts));
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_and_snapshots() {
        let t = VersionedTable::new();
        t.put(b"V", 10, Some(b"v1".to_vec()));
        t.put(b"V", 20, Some(b"v2".to_vec()));
        assert_eq!(t.get_at(b"V", 9), None);
        assert_eq!(t.get_at(b"V", 10), Some(b"v1".to_vec()));
        assert_eq!(t.get_at(b"V", 15), Some(b"v1".to_vec()));
        assert_eq!(t.get_at(b"V", 25), Some(b"v2".to_vec()));
        assert_eq!(t.get_latest(b"V"), Some(b"v2".to_vec()));
    }

    #[test]
    fn tombstone_versions() {
        let t = VersionedTable::new();
        t.put(b"V", 10, Some(b"v1".to_vec()));
        t.put(b"V", 20, None);
        assert_eq!(t.get_at(b"V", 15), Some(b"v1".to_vec()));
        assert_eq!(t.get_at(b"V", 25), None);
        t.put(b"V", 30, Some(b"back".to_vec()));
        assert_eq!(t.get_latest(b"V"), Some(b"back".to_vec()));
    }

    #[test]
    fn snapshot_scan() {
        let t = VersionedTable::new();
        t.put(b"a", 5, Some(b"a5".to_vec()));
        t.put(b"a", 15, Some(b"a15".to_vec()));
        t.put(b"b", 8, Some(b"b8".to_vec()));
        t.put(b"b", 12, None); // deleted at 12
        t.put(b"c", 20, Some(b"c20".to_vec()));
        // Snapshot at 10: a→a5, b→b8, c absent.
        assert_eq!(
            t.scan_at(10),
            vec![
                (b"a".to_vec(), b"a5".to_vec()),
                (b"b".to_vec(), b"b8".to_vec())
            ]
        );
        // Snapshot at 16: a→a15, b deleted, c absent.
        assert_eq!(t.scan_at(16), vec![(b"a".to_vec(), b"a15".to_vec())]);
        // Snapshot at 25: a→a15, c→c20.
        assert_eq!(
            t.scan_at(25),
            vec![
                (b"a".to_vec(), b"a15".to_vec()),
                (b"c".to_vec(), b"c20".to_vec())
            ]
        );
        // Empty snapshot.
        assert_eq!(t.scan_at(1), vec![]);
    }

    #[test]
    fn idempotent_put() {
        let t = VersionedTable::new();
        t.put(b"k", 5, Some(b"x".to_vec()));
        t.put(b"k", 5, Some(b"x".to_vec()));
        assert_eq!(t.version_count(), 1);
    }

    #[test]
    fn gc_shadowed_versions() {
        let t = VersionedTable::new();
        t.put(b"k", 1, Some(b"a".to_vec()));
        t.put(b"k", 2, Some(b"b".to_vec()));
        t.put(b"k", 3, Some(b"c".to_vec()));
        let dropped = t.gc_versions(3);
        assert_eq!(dropped, 1); // version 1 shadowed by 2 (both < 3)
        assert_eq!(t.get_at(b"k", 2), Some(b"b".to_vec()));
        assert_eq!(t.get_latest(b"k"), Some(b"c".to_vec()));
    }
}
