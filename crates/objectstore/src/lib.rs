//! ObjectStore: the durable key-value table store A1 replicates into for
//! disaster recovery (paper §4).
//!
//! The real ObjectStore is a Bing-internal durable store; this substitute
//! implements exactly the capabilities §4 relies on:
//!
//! * **Tables** of key→value rows, with sorted iteration over keys.
//! * **Timestamp-conditional upserts** ([`Table::put_if_newer`]) — the
//!   "native API that accepts a timestamp version" used by best-effort
//!   recovery: a row is replaced only by a newer transaction's write, making
//!   replication-log flushes idempotent and order-insensitive.
//! * **Tombstones** for deletes, garbage-collected after a retention window.
//! * **Versioned tables** ([`VersionedTable`]) keyed ⟨key, timestamp⟩ for
//!   consistent recovery, with snapshot reads at any timestamp.
//! * **Durable watermarks** — A1 persists `tR`, the oldest unreplicated
//!   log timestamp, to pick the consistent recovery snapshot.
//! * **Write-failure injection** so the replication sweeper's retry path is
//!   testable.

mod table;
mod versioned;

pub use table::{Row, Table};
pub use versioned::VersionedTable;

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Store-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Simulated durable-write failure; the caller must retry (the
    /// replication sweeper's job, §4).
    WriteFailed,
    NoSuchTable(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::WriteFailed => write!(f, "durable write failed"),
            StoreError::NoSuchTable(t) => write!(f, "no such table '{t}'"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Configuration for the simulated store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Probability in `[0,1]` that a write fails (transient).
    pub write_fail_rate: f64,
    pub seed: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            write_fail_rate: 0.0,
            seed: 0x05,
        }
    }
}

/// Operation counters.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    pub writes: AtomicU64,
    pub failed_writes: AtomicU64,
    pub reads: AtomicU64,
}

/// The durable store: named tables plus named watermark cells.
pub struct ObjectStore {
    cfg: Mutex<StoreConfig>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
    versioned: RwLock<HashMap<String, Arc<VersionedTable>>>,
    watermarks: RwLock<HashMap<String, u64>>,
    metrics: StoreMetrics,
    rng: Mutex<u64>,
}

impl ObjectStore {
    pub fn new(cfg: StoreConfig) -> Arc<ObjectStore> {
        Arc::new(ObjectStore {
            rng: Mutex::new(cfg.seed | 1),
            cfg: Mutex::new(cfg),
            tables: RwLock::new(HashMap::new()),
            versioned: RwLock::new(HashMap::new()),
            watermarks: RwLock::new(HashMap::new()),
            metrics: StoreMetrics::default(),
        })
    }

    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// Change the injected write-failure rate at runtime (tests).
    pub fn set_write_fail_rate(&self, rate: f64) {
        self.cfg.lock().write_fail_rate = rate;
    }

    /// Create (or open) a timestamped-row table.
    pub fn table(&self, name: &str) -> Arc<Table> {
        if let Some(t) = self.tables.read().get(name) {
            return t.clone();
        }
        self.tables
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Table::new()))
            .clone()
    }

    /// Create (or open) a versioned table (consistent recovery, §4).
    pub fn versioned_table(&self, name: &str) -> Arc<VersionedTable> {
        if let Some(t) = self.versioned.read().get(name) {
            return t.clone();
        }
        self.versioned
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(VersionedTable::new()))
            .clone()
    }

    pub fn drop_table(&self, name: &str) {
        self.tables.write().remove(name);
        self.versioned.write().remove(name);
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.extend(self.versioned.read().keys().cloned());
        names.sort();
        names.dedup();
        names
    }

    /// Durably record a watermark (e.g. `tR`, §4).
    pub fn put_watermark(&self, name: &str, ts: u64) -> Result<(), StoreError> {
        self.maybe_fail()?;
        self.watermarks.write().insert(name.to_string(), ts);
        Ok(())
    }

    pub fn get_watermark(&self, name: &str) -> Option<u64> {
        self.watermarks.read().get(name).copied()
    }

    /// Roll the failure dice and count the write. Tables call this through
    /// the store handle so all writes share one failure model.
    pub(crate) fn maybe_fail(&self) -> Result<(), StoreError> {
        self.metrics.writes.fetch_add(1, Ordering::Relaxed);
        let rate = self.cfg.lock().write_fail_rate;
        if rate > 0.0 {
            let r = {
                let mut s = self.rng.lock();
                *s ^= *s << 13;
                *s ^= *s >> 7;
                *s ^= *s << 17;
                (*s >> 11) as f64 / (1u64 << 53) as f64
            };
            if r < rate {
                self.metrics.failed_writes.fetch_add(1, Ordering::Relaxed);
                return Err(StoreError::WriteFailed);
            }
        }
        Ok(())
    }

    /// Best-effort write wrapper: applies `put_if_newer` with failure
    /// injection.
    pub fn put_if_newer(
        &self,
        table: &str,
        key: &[u8],
        value: Vec<u8>,
        ts: u64,
    ) -> Result<bool, StoreError> {
        self.maybe_fail()?;
        Ok(self.table(table).put_if_newer(key, value, ts))
    }

    pub fn delete_if_newer(&self, table: &str, key: &[u8], ts: u64) -> Result<bool, StoreError> {
        self.maybe_fail()?;
        Ok(self.table(table).delete_if_newer(key, ts))
    }

    /// Versioned write wrapper (consistent recovery scheme).
    pub fn put_versioned(
        &self,
        table: &str,
        key: &[u8],
        ts: u64,
        value: Option<Vec<u8>>,
    ) -> Result<(), StoreError> {
        self.maybe_fail()?;
        self.versioned_table(table).put(key, ts, value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_singletons() {
        let s = ObjectStore::new(StoreConfig::default());
        let a = s.table("t");
        let b = s.table("t");
        assert!(Arc::ptr_eq(&a, &b));
        a.put_if_newer(b"k", b"v".to_vec(), 1);
        assert_eq!(s.table("t").get(b"k").map(|r| r.value), Some(b"v".to_vec()));
        s.drop_table("t");
        assert!(s.table("t").get(b"k").is_none());
    }

    #[test]
    fn watermarks() {
        let s = ObjectStore::new(StoreConfig::default());
        assert_eq!(s.get_watermark("tR"), None);
        s.put_watermark("tR", 42).unwrap();
        assert_eq!(s.get_watermark("tR"), Some(42));
        s.put_watermark("tR", 50).unwrap();
        assert_eq!(s.get_watermark("tR"), Some(50));
    }

    #[test]
    fn failure_injection() {
        let s = ObjectStore::new(StoreConfig {
            write_fail_rate: 1.0,
            seed: 7,
        });
        assert_eq!(
            s.put_if_newer("t", b"k", b"v".to_vec(), 1),
            Err(StoreError::WriteFailed)
        );
        s.set_write_fail_rate(0.0);
        assert_eq!(s.put_if_newer("t", b"k", b"v".to_vec(), 1), Ok(true));
        assert!(s.metrics().failed_writes.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn partial_failure_rate_eventually_succeeds() {
        let s = ObjectStore::new(StoreConfig {
            write_fail_rate: 0.5,
            seed: 3,
        });
        let mut ok = 0;
        for i in 0..100u64 {
            if s.put_if_newer("t", &i.to_le_bytes(), vec![1], i).is_ok() {
                ok += 1;
            }
        }
        assert!(ok > 20 && ok < 80, "got {ok}");
    }

    #[test]
    fn table_names_lists_both_kinds() {
        let s = ObjectStore::new(StoreConfig::default());
        s.table("a");
        s.versioned_table("b");
        assert_eq!(s.table_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
