//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset of the `parking_lot` API it actually uses: `Mutex` / `RwLock`
//! whose `lock()` / `read()` / `write()` return guards directly (no poison
//! `Result`). Poisoning is deliberately ignored, matching parking_lot's
//! semantics: a panic while holding a lock does not poison it for others.

use std::sync;

/// A mutex whose `lock()` returns the guard directly (never poisons).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A readers-writer lock whose `read()` / `write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
