//! Offline stand-in for the `bytes` crate (see vendor/README.md).
//!
//! Provides the subset the workspace uses: an immutable, cheaply-cloneable
//! `Bytes` buffer. Owned data is reference-counted (`Arc<[u8]>`) so cloning is
//! O(1), matching the real crate's central guarantee; `from_static` borrows
//! `'static` data with no allocation at all.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes(Repr);

#[derive(Clone, Default)]
enum Repr {
    #[default]
    Empty,
    Static(&'static [u8]),
    /// A view into refcounted storage: (buffer, start, end).
    Shared(Arc<[u8]>, usize, usize),
}

impl Bytes {
    /// Creates a new empty `Bytes` without allocating.
    pub const fn new() -> Self {
        Bytes(Repr::Empty)
    }

    /// Creates `Bytes` from a `'static` slice without allocating.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data), 0, data.len()))
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a `Bytes` view of the given subrange — O(1), like the real
    /// crate: shared storage is refcounted with (start, end) offsets.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of range"
        );
        match &self.0 {
            Repr::Empty => Bytes::new(),
            Repr::Static(s) => Bytes(Repr::Static(&s[start..end])),
            Repr::Shared(buf, s, _) => Bytes(Repr::Shared(buf.clone(), s + start, s + end)),
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Empty => &[],
            Repr::Static(s) => s,
            Repr::Shared(buf, start, end) => &buf[*start..*end],
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes(Repr::Shared(Arc::from(v), 0, len))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        let c = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(&a[..2], b"ab");
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![7; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn slice_is_a_zero_copy_view() {
        let a = Bytes::from((0u8..64).collect::<Vec<_>>());
        let s = a.slice(10..20);
        assert_eq!(&s[..], &(10u8..20).collect::<Vec<_>>()[..]);
        assert!(
            std::ptr::eq(&s[0], &a[10]),
            "slice must alias the parent buffer"
        );
        // Sub-slicing composes; offsets stay relative to the view.
        let s2 = s.slice(2..4);
        assert_eq!(&s2[..], &[12, 13]);
        let st = Bytes::from_static(b"hello").slice(1..=3);
        assert_eq!(&st[..], b"ell");
        assert_eq!(a.slice(..).len(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        Bytes::from_static(b"abc").slice(2..9);
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
