//! Offline stand-in for the `crossbeam` crate (see vendor/README.md).
//!
//! Only `crossbeam::channel` is provided. `std::sync::mpsc` cannot back it —
//! its `Receiver` is neither `Clone` nor `Sync`, and crossbeam channels are
//! MPMC — so this is a from-scratch MPMC channel over `Mutex<VecDeque>` +
//! condvars, supporting unbounded, bounded, and rendezvous (`bounded(0)`)
//! flavors with `recv_timeout` and disconnection detection.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    struct Inner<T> {
        queue: VecDeque<T>,
        /// Queue capacity; `usize::MAX` for unbounded, `0` for rendezvous.
        cap: usize,
        /// Running count of items ever popped, for rendezvous handshakes.
        popped: u64,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signaled when an item is pushed or all senders leave.
        readable: Condvar,
        /// Signaled when an item is popped or all receivers leave.
        writable: Condvar,
    }

    /// Sending half of a channel; cloneable and shareable across threads.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of a channel; cloneable and shareable across threads.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                self.0.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                self.0.writable.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full; on a
        /// rendezvous channel, blocks until a receiver takes the message.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &*self.0;
            let mut inner = shared.inner.lock().unwrap();
            // Wait for queue room (a rendezvous channel admits one in-flight
            // item here; the handoff wait below restores its semantics).
            let room = inner.cap.max(1);
            while inner.receivers > 0 && inner.queue.len() >= room {
                inner = shared.writable.wait(inner).unwrap();
            }
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            let handoff_target = inner.popped + inner.queue.len() as u64 + 1;
            inner.queue.push_back(value);
            shared.readable.notify_one();
            if inner.cap == 0 {
                // Rendezvous: wait until our item has actually been taken.
                while inner.receivers > 0 && inner.popped < handoff_target {
                    inner = shared.writable.wait(inner).unwrap();
                }
                if inner.popped < handoff_target {
                    // All receivers left with our item still queued: recover
                    // it and report the failed send, as crossbeam does.
                    let index = (handoff_target - inner.popped - 1) as usize;
                    let value = inner.queue.remove(index).expect("stranded item is queued");
                    return Err(SendError(value));
                }
            }
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.0;
            let mut inner = shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    inner.popped += 1;
                    shared.writable.notify_all();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = shared.readable.wait(inner).unwrap();
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let shared = &*self.0;
            let mut inner = shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    inner.popped += 1;
                    shared.writable.notify_all();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout) =
                    shared.readable.wait_timeout(inner, deadline - now).unwrap();
                inner = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.0;
            let mut inner = shared.inner.lock().unwrap();
            match inner.queue.pop_front() {
                Some(v) => {
                    inner.popped += 1;
                    shared.writable.notify_all();
                    Ok(v)
                }
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator over received messages, ending on disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    fn with_cap<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                popped: 0,
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(usize::MAX)
    }

    /// Creates a bounded channel; `bounded(0)` is a rendezvous channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn rendezvous_send_waits_for_receiver() {
        let (tx, rx) = bounded(0);
        let h = std::thread::spawn(move || tx.send(7).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        h.join().unwrap();
    }

    #[test]
    fn bounded_send_blocks_when_full() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first recv below
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        h.join().unwrap();
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn rendezvous_send_fails_and_recovers_value_if_receiver_leaves() {
        let (tx, rx) = bounded(0);
        let h = std::thread::spawn(move || tx.send(99));
        // Let the sender queue its item and enter the handoff wait, then
        // abandon it without receiving.
        std::thread::sleep(Duration::from_millis(50));
        drop(rx);
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err.0, 99, "failed rendezvous send must hand the value back");
    }

    #[test]
    fn mpmc_shared_receiver_drains_everything() {
        let (tx, rx) = unbounded();
        let mut consumers = Vec::new();
        let got = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        for _ in 0..4 {
            let rx = rx.clone();
            let got = got.clone();
            consumers.push(std::thread::spawn(move || {
                while let Ok(v) = rx.recv() {
                    got.lock().unwrap().push(v);
                }
            }));
        }
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        for c in consumers {
            c.join().unwrap();
        }
        let mut got = std::sync::Arc::try_unwrap(got)
            .unwrap()
            .into_inner()
            .unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
