//! Case execution for the `proptest!` macro.

use std::fmt;

use rand::SeedableRng;

use crate::strategy::TestRng;

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; there is no shrinking here.
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; rejection sampling is not used.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// A test-case failure that aborts the case (and the test) without shrinking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "{reason}"),
            TestCaseError::Reject(reason) => write!(f, "rejected: {reason}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a, so each property gets a stable, name-derived seed stream.
fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `body` for `config.cases` deterministic cases; panics with the case
/// index and seed on the first failure so it can be replayed.
pub fn run<F>(config: &Config, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    for case in 0..config.cases {
        let seed = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "property '{name}' failed at case {case}/{} (seed {seed:#018x}): {reason}",
                    config.cases
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_run_all_cases() {
        let mut count = 0;
        run(
            &Config {
                cases: 17,
                ..Config::default()
            },
            "counter",
            |_rng| {
                count += 1;
                Ok(())
            },
        );
        assert_eq!(count, 17);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_panics_with_seed() {
        run(&Config::default(), "fails", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn rejects_are_skipped() {
        run(
            &Config {
                cases: 3,
                ..Config::default()
            },
            "rejects",
            |_rng| Err(TestCaseError::reject("not applicable")),
        );
    }
}
