//! Offline stand-in for the `proptest` crate (see vendor/README.md).
//!
//! Implements the strategy combinators and the `proptest!` runner macro that
//! this workspace's property suites use. Differences from real proptest, by
//! design:
//!
//! * **No shrinking.** A failing case panics with its deterministic seed so it
//!   can be replayed, but is not minimized.
//! * **Regex string strategies** support the subset of patterns the suites
//!   use: `\PC`, character classes with ranges and escapes, and `{m,n}` /
//!   `{n}` repetition (see [`pattern`]).
//! * Case counts default to 256 and honor `ProptestConfig { cases, .. }`.

pub mod arbitrary;
pub mod collection;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestCaseError};

/// Strategies over `bool` (mirrors `proptest::bool`).
pub mod bool {
    /// Strategy producing `true` / `false` uniformly.
    pub const ANY: crate::arbitrary::Any<::core::primitive::bool> = crate::arbitrary::Any::NEW;
}

/// The glob-import module mirrored from real proptest.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Builds a strategy choosing uniformly among the given strategies, which
/// must all produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (rather
/// than aborting the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::test_runner::run(&config, stringify!($name), |prop_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), prop_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )+
    };
    ($($tokens:tt)+) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($tokens)+
        }
    };
}
