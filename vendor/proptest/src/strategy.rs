//! The [`Strategy`] trait and its combinators.

use std::fmt::Debug;
use std::ops::Range;
use std::sync::Arc;

use rand::Rng;

/// The RNG handed to strategies; deterministic per test case.
pub type TestRng = rand::rngs::StdRng;

/// A recipe for generating values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a value directly.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `f` wraps a
    /// strategy for depth *d − 1* into one for depth *d*. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility; recursion
    /// depth alone bounds generated values here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Send + Sync + 'static,
        R: Strategy<Value = Self::Value> + Send + Sync + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = f(current).boxed();
            current = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        current
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Send + Sync + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe mirror of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<V>: Send + Sync {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy + Send + Sync> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy that always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone + Debug>(pub V);

impl<V: Clone + Debug> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Uniform choice among same-valued strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// `&'static str` patterns act as regex-flavored string strategies.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::Pattern::compile(self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn map_and_union_generate() {
        let mut rng = TestRng::seed_from_u64(0);
        let s = crate::prop_oneof![Just(1u8), Just(2u8)].prop_map(|v| v * 10);
        for _ in 0..64 {
            let v = s.generate(&mut rng);
            assert!(v == 10 || v == 20);
        }
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)] // payload exercises value generation only
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0u8..255)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::seed_from_u64(42);
        for _ in 0..128 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }

    #[test]
    fn str_pattern_strategy() {
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..64 {
            let s = "[a-c]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
