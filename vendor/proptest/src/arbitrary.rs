//! `any::<T>()` — strategies for "any value of a primitive type".

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::Rng;

use crate::strategy::{Strategy, TestRng};

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy producing arbitrary values of `T`; returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Any<T> {
    /// `const`-constructible instance (used by `prop::bool::ANY`).
    pub const NEW: Any<T> = Any(PhantomData);
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T> Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::NEW
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias 1-in-8 toward boundary values, where codec and
                // ordering bugs live; real proptest biases similarly.
                if rng.gen_range(0u8..8) == 0 {
                    const EDGES: [$t; 4] = [0, 1, <$t>::MIN, <$t>::MAX];
                    EDGES[rng.gen_range(0usize..EDGES.len())]
                } else {
                    rng.gen::<u64>() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.gen_range(0u8..8) {
            0 => [0.0, -0.0, 1.0, -1.0, f64::MAX, f64::MIN_POSITIVE][rng.gen_range(0usize..6)],
            // Whole-valued and fractional magnitudes across scales.
            1..=3 => (rng.gen::<u32>() as f64 - (u32::MAX / 2) as f64) / 1e3,
            _ => (rng.gen::<f64>() - 0.5) * 2e9,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII most of the time, occasionally multi-byte.
        const EXOTIC: [char; 6] = ['é', 'ß', 'λ', '中', '😀', '\u{203D}'];
        if rng.gen_range(0u8..8) == 0 {
            EXOTIC[rng.gen_range(0usize..EXOTIC.len())]
        } else {
            char::from(rng.gen_range(0x20u8..0x7F))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn edges_show_up() {
        let mut rng = TestRng::seed_from_u64(3);
        let vals: Vec<i32> = (0..2_000).map(|_| i32::arbitrary(&mut rng)).collect();
        assert!(vals.contains(&i32::MIN));
        assert!(vals.contains(&i32::MAX));
        assert!(vals.contains(&0));
    }

    #[test]
    fn bools_are_both() {
        let mut rng = TestRng::seed_from_u64(4);
        let vals: Vec<bool> = (0..64).map(|_| bool::arbitrary(&mut rng)).collect();
        assert!(vals.contains(&true) && vals.contains(&false));
    }
}
