//! Strategies over collections (mirrors `proptest::collection`).

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::ops::Range;

use rand::Rng;

use crate::strategy::{Strategy, TestRng};

/// The number of elements a collection strategy may produce.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive, matching `Range` semantics.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.min >= self.max {
            self.min
        } else {
            rng.gen_range(self.min..self.max)
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`. Duplicate generated keys collapse, so the
/// final size may fall below the drawn one (real proptest retries; the suites
/// here only bound sizes from above).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.pick(rng);
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;
    use rand::SeedableRng;

    #[test]
    fn vec_sizes_respect_range() {
        let s = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_map_bounded_above() {
        let s = btree_map(any::<u16>(), any::<u8>(), 0..8);
        let mut rng = TestRng::seed_from_u64(6);
        for _ in 0..200 {
            assert!(s.generate(&mut rng).len() < 8);
        }
    }
}
