//! A tiny regex-subset generator backing `&str` strategies.
//!
//! Supported syntax (the subset the workspace's suites use):
//!
//! * `\PC` — any "printable" character (complement of Unicode category C);
//!   generated as printable ASCII most of the time with occasional multi-byte
//!   characters.
//! * `[...]` — character classes with literal chars, `a-z` ranges, and the
//!   escapes `\\`, `\]`, `\-`, `\n`, `\t`, `\0`, and `\xNN`.
//! * `{n}` / `{m,n}` — repetition of the preceding atom.
//! * any other character — itself, literally (`\\` escapes).
//!
//! Anything else (alternation, groups, `*`, `+`, `.`) panics at strategy
//! construction with a clear message, so an unsupported pattern fails the
//! suite loudly instead of generating wrong data.

use rand::Rng;

use crate::strategy::TestRng;

const EXOTIC_PRINTABLE: [char; 8] = ['é', 'ß', 'λ', '中', 'Ω', '😀', '\u{203D}', '\u{00A0}'];

#[derive(Debug, Clone)]
enum Atom {
    /// `\PC`: printable characters.
    Printable,
    /// `[...]`: explicit alternatives.
    Class(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// A compiled pattern: a sequence of repeated atoms.
#[derive(Debug, Clone)]
pub struct Pattern {
    pieces: Vec<Piece>,
}

impl Pattern {
    /// Compiles `pattern`, panicking on syntax outside the supported subset.
    pub fn compile(pattern: &str) -> Pattern {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '\\' => match chars.next() {
                    Some('P') => match chars.next() {
                        Some('C') => Atom::Printable,
                        other => panic!(
                            "unsupported \\P category {other:?} in pattern {pattern:?} \
                                 (only \\PC is supported)"
                        ),
                    },
                    Some(esc) => Atom::Literal(unescape(esc, &mut chars, pattern)),
                    None => panic!("dangling backslash in pattern {pattern:?}"),
                },
                '[' => Atom::Class(parse_class(&mut chars, pattern)),
                '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                    panic!("unsupported regex syntax {c:?} in pattern {pattern:?}")
                }
                lit => Atom::Literal(lit),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                parse_repeat(&mut chars, pattern)
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        Pattern { pieces }
    }

    /// Generates one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = rng.gen_range(piece.min..piece.max + 1);
            for _ in 0..n {
                out.push(match &piece.atom {
                    Atom::Printable => {
                        if rng.gen_range(0u8..8) == 0 {
                            EXOTIC_PRINTABLE[rng.gen_range(0usize..EXOTIC_PRINTABLE.len())]
                        } else {
                            char::from(rng.gen_range(0x20u8..0x7F))
                        }
                    }
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.gen_range(0usize..ranges.len())];
                        char::from_u32(rng.gen_range(lo as u32..hi as u32 + 1))
                            .expect("class ranges hold valid chars")
                    }
                    Atom::Literal(c) => *c,
                });
            }
        }
        out
    }
}

fn unescape(
    esc: char,
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> char {
    match esc {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        'x' => {
            let hi = chars.next().and_then(|c| c.to_digit(16));
            let lo = chars.next().and_then(|c| c.to_digit(16));
            match (hi, lo) {
                (Some(hi), Some(lo)) => {
                    char::from_u32(hi * 16 + lo).expect("\\xNN is always valid")
                }
                _ => panic!("malformed \\x escape in pattern {pattern:?}"),
            }
        }
        '\\' | '[' | ']' | '-' | '{' | '}' | '(' | ')' | '|' | '.' | '*' | '+' | '?' | '$'
        | '^' | '"' | '\'' | '/' => esc,
        other => panic!("unsupported escape \\{other} in pattern {pattern:?}"),
    }
}

/// Parses the interior of `[...]` (the `[` is already consumed).
fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<(char, char)> {
    let mut ranges: Vec<(char, char)> = Vec::new();
    loop {
        let c = match chars.next() {
            Some(']') => break,
            Some('\\') => {
                let esc = chars.next().unwrap_or_else(|| {
                    panic!("dangling backslash in class in pattern {pattern:?}")
                });
                unescape(esc, chars, pattern)
            }
            Some(c) => c,
            None => panic!("unterminated character class in pattern {pattern:?}"),
        };
        // A `-` that is neither first nor last denotes a range.
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next();
            if ahead.peek() != Some(&']') {
                chars.next();
                let hi = match chars.next() {
                    Some('\\') => {
                        let esc = chars.next().unwrap_or_else(|| {
                            panic!("dangling backslash in class in pattern {pattern:?}")
                        });
                        unescape(esc, chars, pattern)
                    }
                    Some(hi) => hi,
                    None => panic!("unterminated range in class in pattern {pattern:?}"),
                };
                assert!(
                    c <= hi,
                    "inverted range {c:?}-{hi:?} in pattern {pattern:?}"
                );
                ranges.push((c, hi));
                continue;
            }
        }
        ranges.push((c, c));
    }
    assert!(
        !ranges.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    ranges
}

/// Parses `n}` or `m,n}` (the `{` is already consumed).
fn parse_repeat(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    let mut first = String::new();
    let mut second: Option<String> = None;
    loop {
        match chars.next() {
            Some('}') => break,
            Some(',') => second = Some(String::new()),
            Some(d) if d.is_ascii_digit() => match &mut second {
                Some(s) => s.push(d),
                None => first.push(d),
            },
            other => panic!("malformed repetition {other:?} in pattern {pattern:?}"),
        }
    }
    let min: usize = first
        .parse()
        .unwrap_or_else(|_| panic!("malformed repetition bound {first:?} in pattern {pattern:?}"));
    let max = match second {
        None => min,
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("malformed repetition bound {s:?} in pattern {pattern:?}")),
    };
    assert!(
        min <= max,
        "inverted repetition {{{min},{max}}} in pattern {pattern:?}"
    );
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen_many(pattern: &str, n: usize) -> Vec<String> {
        let p = Pattern::compile(pattern);
        let mut rng = TestRng::seed_from_u64(11);
        (0..n).map(|_| p.generate(&mut rng)).collect()
    }

    #[test]
    fn printable_any_length() {
        for s in gen_many("\\PC{0,16}", 200) {
            assert!(s.chars().count() <= 16);
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
        }
    }

    #[test]
    fn class_with_escape_and_range() {
        for s in gen_many("[a-c\\x00]{0,6}", 200) {
            assert!(s.chars().all(|c| ('a'..='c').contains(&c) || c == '\0'));
        }
    }

    #[test]
    fn ascii_span_class() {
        for s in gen_many("[ -~]{0,12}", 200) {
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn identifier_class() {
        let all = gen_many("[a-z_]{1,8}", 200);
        for s in &all {
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        assert!(all.iter().any(|s| s.contains('_')));
    }

    #[test]
    fn literals_and_exact_repeat() {
        for s in gen_many("ab{3}c", 10) {
            assert_eq!(s, "abbbc");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn unsupported_syntax_panics() {
        Pattern::compile("a|b");
    }
}
