//! Offline stand-in for the `criterion` crate (see vendor/README.md).
//!
//! Provides the harness surface the workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — measured with plain
//! wall-clock timing. Per benchmark it runs a short warm-up, then
//! `sample_size` timed samples (auto-scaling iterations per sample so fast
//! closures are measured over many calls), and reports min / median / mean.
//! No statistical regression analysis, plots, or baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers compile.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            target_sample_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the measurement time budget per sample.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target_sample_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(self, name, f);
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_benchmark(self.criterion, &full, f);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Passed to the closure under test; `iter` does the timing.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    mode: BencherMode,
}

enum BencherMode {
    /// Determine how many iterations fit the per-sample time budget.
    Calibrate {
        elapsed: Duration,
        iters: u64,
        budget: Duration,
    },
    Measure,
}

impl Bencher {
    /// Times `sample_size` samples of `routine`, auto-scaled per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &mut self.mode {
            BencherMode::Calibrate {
                elapsed,
                iters,
                budget,
            } => {
                let deadline = *budget;
                let start = Instant::now();
                while start.elapsed() < deadline {
                    std_black_box(routine());
                    *iters += 1;
                }
                *elapsed = start.elapsed();
            }
            BencherMode::Measure => {
                let n = self.iters_per_sample.max(1);
                let start = Instant::now();
                for _ in 0..n {
                    std_black_box(routine());
                }
                self.samples.push(start.elapsed() / n as u32);
            }
        }
    }
}

fn run_benchmark(criterion: &Criterion, name: &str, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up doubles as calibration of iterations-per-sample.
    let mut bencher = Bencher {
        iters_per_sample: 0,
        samples: Vec::new(),
        mode: BencherMode::Calibrate {
            elapsed: Duration::ZERO,
            iters: 0,
            budget: criterion.warm_up_time,
        },
    };
    f(&mut bencher);
    let (elapsed, iters) = match bencher.mode {
        BencherMode::Calibrate { elapsed, iters, .. } => (elapsed, iters),
        BencherMode::Measure => unreachable!(),
    };
    if iters == 0 {
        // The closure never called `iter`; nothing to report.
        println!("{name:<40} (no measurement: Bencher::iter not called)");
        return;
    }
    let per_iter = elapsed / iters as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1_000
    } else {
        (criterion.target_sample_time.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000)
            as u64
    };

    let mut bencher = Bencher {
        iters_per_sample,
        samples: Vec::new(),
        mode: BencherMode::Measure,
    };
    for _ in 0..criterion.sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{name:<40} (no measurement: Bencher::iter not called)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} min {:>12} med {:>12} mean {:>12} ({} samples x {iters_per_sample} iters)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("group");
        let mut count = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                count += 1;
                std::hint::black_box(count)
            })
        });
        g.finish();
        assert!(count > 0, "routine must have run");
    }

    #[test]
    fn group_and_main_macros_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group! {
            name = benches;
            config = Criterion::default()
                .sample_size(2)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(1));
            targets = target
        }
        benches();
    }
}
