//! Offline stand-in for the `rand` crate (see vendor/README.md).
//!
//! Implements the subset the workspace uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen`,
//! `gen_range`, and `gen_bool`. The generator is xoshiro256++ seeded through
//! splitmix64 — not the real crate's ChaCha12, so streams differ from
//! upstream `rand` for the same seed, but determinism per seed (what the
//! benchmarks and workload generators rely on) holds.

use std::ops::Range;

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// A type that can be sampled uniformly from an `Rng` (the `Standard`
/// distribution in real `rand`).
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that can be sampled uniformly (the `SampleRange` trait in real
/// `rand`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); span == 0 means the full
                // 2^64 domain, where any u64 is uniform.
                let v = if span == 0 {
                    rng.next_u64()
                } else {
                    let zone = u64::MAX - (u64::MAX - span + 1) % span;
                    loop {
                        let v = rng.next_u64();
                        if v <= zone {
                            break v % span;
                        }
                    }
                };
                self.start.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a small seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
