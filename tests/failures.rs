//! Failure drills across the stack: machine kill with promotion, process
//! crash with fast restart, and disaster recovery after total loss
//! (paper §2.1, §4, §5.3).

use a1::core::{A1Cluster, A1Config, Json, MachineId};
use a1_objectstore::{ObjectStore, StoreConfig};
use a1_recovery::{recover_best_effort, Replicator};

const T: &str = "t";
const G: &str = "g";

fn seeded_cluster(machines: u32, dr: bool) -> A1Cluster {
    let cluster = A1Cluster::start(A1Config {
        dr_enabled: dr,
        ..A1Config::small(machines)
    })
    .unwrap();
    let client = cluster.client();
    client.create_tenant(T).unwrap();
    client.create_graph(T, G).unwrap();
    client
        .create_vertex_type(
            T,
            G,
            r#"{"name": "node", "fields": [
                {"id": 0, "name": "id", "type": "string", "required": true},
                {"id": 1, "name": "rank", "type": "int64"}]}"#,
            "id",
            &[],
        )
        .unwrap();
    client
        .create_edge_type(T, G, r#"{"name": "link", "fields": []}"#)
        .unwrap();
    for i in 0..40 {
        client
            .create_vertex(T, G, "node", &format!(r#"{{"id": "n{i:02}"}}"#))
            .unwrap();
    }
    for i in 0..39 {
        client
            .create_edge(
                T,
                G,
                "node",
                &Json::str(&format!("n{i:02}")),
                "link",
                "node",
                &Json::str(&format!("n{:02}", i + 1)),
                None,
            )
            .unwrap();
    }
    cluster
}

#[test]
fn machine_kill_preserves_graph_and_availability() {
    let cluster = seeded_cluster(6, false);
    let client = cluster.client();

    cluster.farm().kill_machine(MachineId(3));

    // Everything is still readable (backups promoted, re-replicated).
    for i in 0..40 {
        assert!(
            client
                .get_vertex(T, G, "node", &Json::str(&format!("n{i:02}")))
                .unwrap()
                .is_some(),
            "n{i:02} lost after failure"
        );
    }
    // Traversals still work end to end.
    let out = client
        .query(
            T,
            G,
            r#"{"id": "n00", "_out_edge": {"_type": "link",
                "_vertex": {"_select": ["_count(*)"]}}}"#,
        )
        .unwrap();
    assert_eq!(out.count, Some(1));
    // Writes too.
    client
        .create_vertex(T, G, "node", r#"{"id": "post-failure"}"#)
        .unwrap();

    // A second failure in a different fault domain is also survivable.
    cluster.farm().kill_machine(MachineId(4));
    assert!(client
        .get_vertex(T, G, "node", &Json::str("n07"))
        .unwrap()
        .is_some());
}

#[test]
fn process_crash_fast_restart_resumes_in_place() {
    // Two machines, replicas=2 so killing one process leaves the data served
    // by the survivor; restarting re-attaches PyCo memory on the crashed one.
    let mut cfg = A1Config::small(2);
    cfg.farm.replicas = 2;
    let cluster = A1Cluster::start(cfg).unwrap();
    let client = cluster.client();
    client.create_tenant(T).unwrap();
    client.create_graph(T, G).unwrap();
    client
        .create_vertex_type(
            T,
            G,
            r#"{"name": "node", "fields": [
                {"id": 0, "name": "id", "type": "string", "required": true}]}"#,
            "id",
            &[],
        )
        .unwrap();
    for i in 0..10 {
        client
            .create_vertex(T, G, "node", &format!(r#"{{"id": "n{i}"}}"#))
            .unwrap();
    }

    let farm = cluster.farm().clone();
    farm.crash_process(MachineId(1));
    farm.restart_process(MachineId(1));

    for i in 0..10 {
        assert!(client
            .get_vertex(T, G, "node", &Json::str(&format!("n{i}")))
            .unwrap()
            .is_some());
    }
    client
        .create_vertex(T, G, "node", r#"{"id": "post-restart"}"#)
        .unwrap();
}

#[test]
fn disaster_then_best_effort_recovery() {
    // Full pipeline: cluster with DR → replicate → total loss → recover
    // into a brand-new cluster and verify the graph.
    let cluster = seeded_cluster(3, true);
    let store = ObjectStore::new(StoreConfig::default());
    let repl = Replicator::new(cluster.clone(), store).unwrap();
    repl.replicate_catalog().unwrap();
    repl.sweep_all().unwrap();
    repl.update_watermark().unwrap();

    // "Power loss to the entire datacenter" — drop the cluster.
    drop(cluster);

    let (recovered, report) = recover_best_effort(repl.store(), A1Config::small(3), T, G).unwrap();
    assert_eq!(report.vertices, 40);
    assert_eq!(report.edges, 39);
    assert_eq!(report.dangling_edges_dropped, 0);
    let rc = recovered.client();
    let out = rc
        .query(
            T,
            G,
            r#"{"id": "n10", "_out_edge": {"_type": "link",
                "_vertex": {"_out_edge": {"_type": "link",
                "_vertex": {"_select": ["*"]}}}}}"#,
        )
        .unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0].get("id").unwrap().as_str(), Some("n12"));
}
