//! Streaming-ingestion acceptance (ISSUE 3): (a) group-commit parallel
//! ingest produces a graph query-identical to serial single-op loading,
//! (b) replaying an at-least-once stream changes nothing (watermark dedup),
//! and (c) batched parallel ingest beats the single-op baseline ≥ 3x on a
//! latency-injected 8-machine cluster (snapshotted in `BENCH_3.json`).

use a1_core::{A1Client, A1Cluster, A1Config, Json, Mutation};
use a1_ingest::{IngestConfig, IngestPipeline, MutationRecord};
use std::time::Duration;

const TENANT: &str = "t";
const GRAPH: &str = "g";
const N: usize = 48;

const SCHEMA: &str = r#"{
    "name": "entity",
    "fields": [
        {"id": 0, "name": "id", "type": "string", "required": true},
        {"id": 1, "name": "rank", "type": "int64"}
    ]
}"#;

fn fresh_cluster(machines: u32, dr: bool) -> (A1Cluster, A1Client) {
    let mut cfg = A1Config::small(machines);
    cfg.dr_enabled = dr;
    let cluster = A1Cluster::start(cfg).unwrap();
    let client = cluster.client();
    client.create_tenant(TENANT).unwrap();
    client.create_graph(TENANT, GRAPH).unwrap();
    client
        .create_vertex_type(TENANT, GRAPH, SCHEMA, "id", &["rank"])
        .unwrap();
    client
        .create_edge_type(TENANT, GRAPH, r#"{"name": "link", "fields": []}"#)
        .unwrap();
    (cluster, client)
}

fn vid(i: usize) -> String {
    format!("v{i:03}")
}

fn upsert_vertex(seq: u64, id: &str, rank: i64) -> MutationRecord {
    MutationRecord::keyed(
        "bus",
        seq,
        id,
        Mutation::UpsertVertex {
            tenant: TENANT.into(),
            graph: GRAPH.into(),
            ty: "entity".into(),
            attrs: Json::obj(vec![
                ("id", Json::str(id)),
                ("rank", Json::Num(rank as f64)),
            ]),
        },
    )
}

fn upsert_edge(seq: u64, src: &str, dst: &str) -> MutationRecord {
    MutationRecord::new(
        "bus",
        seq,
        Mutation::UpsertEdge {
            tenant: TENANT.into(),
            graph: GRAPH.into(),
            src_type: "entity".into(),
            src_id: Json::str(src),
            edge_type: "link".into(),
            dst_type: "entity".into(),
            dst_id: Json::str(dst),
            data: None,
        },
    )
    .unwrap()
}

/// The stream, in three phases (vertices → edges → updates/deletes) with
/// per-entity ordering inside each phase. Returns the phase boundaries.
fn stream() -> (Vec<MutationRecord>, usize, usize) {
    let mut seq = 0u64;
    let mut next = || {
        seq += 1;
        seq
    };
    let mut recs = Vec::new();
    for i in 0..N {
        recs.push(upsert_vertex(next(), &vid(i), 1));
    }
    let p1 = recs.len();
    // Chain edges plus skip links: plenty of cross-partition endpoints.
    for i in 0..N - 1 {
        recs.push(upsert_edge(next(), &vid(i), &vid(i + 1)));
    }
    for i in 0..N {
        recs.push(upsert_edge(next(), &vid(i), &vid((i + 7) % N)));
    }
    let p2 = recs.len();
    // Updates (rank flips to 2 for every third vertex), one vertex delete
    // (cleans its edges), one edge delete.
    for i in (0..N).step_by(3) {
        recs.push(upsert_vertex(next(), &vid(i), 2));
    }
    recs.push(
        MutationRecord::new(
            "bus",
            next(),
            Mutation::DeleteVertex {
                tenant: TENANT.into(),
                graph: GRAPH.into(),
                ty: "entity".into(),
                id: Json::str(&vid(5)),
            },
        )
        .unwrap(),
    );
    recs.push(
        MutationRecord::new(
            "bus",
            next(),
            Mutation::DeleteEdge {
                tenant: TENANT.into(),
                graph: GRAPH.into(),
                src_type: "entity".into(),
                src_id: Json::str(&vid(10)),
                edge_type: "link".into(),
                dst_type: "entity".into(),
                dst_id: Json::str(&vid(11)),
            },
        )
        .unwrap(),
    );
    (recs, p1, p2)
}

/// Full observable state: every vertex's attributes and out-neighbour
/// count, the secondary-index row multiset, and a count query.
fn graph_fingerprint(client: &A1Client) -> String {
    let mut out = String::new();
    for i in 0..N {
        let id = vid(i);
        let v = client
            .get_vertex(TENANT, GRAPH, "entity", &Json::str(&id))
            .unwrap();
        let degree = match &v {
            Some(_) => {
                let q = format!(
                    r#"{{ "id": "{id}", "_out_edge": {{ "_type": "link",
                         "_vertex": {{ "_select": ["_count(*)"] }}}}}}"#
                );
                client.query(TENANT, GRAPH, &q).unwrap().count.unwrap_or(0)
            }
            None => 0,
        };
        out.push_str(&format!(
            "{id} => {} deg={degree}\n",
            v.map(|j| j.to_string()).unwrap_or_else(|| "∅".into())
        ));
    }
    for rank in [1, 2] {
        let q = format!(r#"{{ "_type": "entity", "rank": {rank}, "_select": ["id"] }}"#);
        let mut rows: Vec<String> = client
            .query(TENANT, GRAPH, &q)
            .unwrap()
            .rows
            .iter()
            .map(|r| r.to_string())
            .collect();
        rows.sort(); // row order may differ by physical address; compare as sets
        out.push_str(&format!("rank{rank}: {rows:?}\n"));
    }
    out
}

fn ingest_stream(pipe: &IngestPipeline, recs: &[MutationRecord], p1: usize, p2: usize) {
    for (i, r) in recs.iter().enumerate() {
        if i == p1 || i == p2 {
            pipe.flush().unwrap(); // phase barrier: edges after vertices
        }
        pipe.submit(r.clone()).unwrap();
    }
    pipe.flush().unwrap();
}

fn parallel_cfg() -> IngestConfig {
    IngestConfig {
        partitions: 4,
        batch_size: 8,
        queue_depth: 16,
        flush_interval: Duration::from_millis(1),
        ..IngestConfig::default()
    }
}

/// (a) + (b): equivalence with serial loading, then replay idempotence.
#[test]
fn parallel_group_commit_matches_serial_and_replay_is_idempotent() {
    let (recs, p1, p2) = stream();

    // Serial single-op loading: one transaction per mutation, in order.
    let (_serial_cluster, serial_client) = fresh_cluster(4, false);
    for r in &recs {
        serial_client
            .apply_batch(std::slice::from_ref(&r.op))
            .unwrap();
    }

    // Group-commit parallel ingest of the same stream.
    let (cluster, client) = fresh_cluster(4, false);
    let pipe = IngestPipeline::start(&cluster, parallel_cfg()).unwrap();
    ingest_stream(&pipe, &recs, p1, p2);
    let stats = pipe.stats();
    assert_eq!(
        stats.failed,
        0,
        "no records dropped: {:?}",
        pipe.last_error()
    );
    assert_eq!(stats.applied, recs.len() as u64);
    assert!(stats.avg_batch() > 1.0, "group commit actually batched");

    // (a) byte-identical query results.
    let serial_fp = graph_fingerprint(&serial_client);
    let parallel_fp = graph_fingerprint(&client);
    assert_eq!(serial_fp, parallel_fp);

    // (b) at-least-once redelivery: replay the full stream and a suffix
    // through a fresh pipeline resuming the same watermarks.
    let wm = pipe.watermarks();
    pipe.shutdown().unwrap();
    let pipe2 = IngestPipeline::start(
        &cluster,
        IngestConfig {
            resume_watermarks: Some(wm),
            ..parallel_cfg()
        },
    )
    .unwrap();
    ingest_stream(&pipe2, &recs, p1, p2);
    for r in &recs[recs.len() / 2..] {
        pipe2.submit(r.clone()).unwrap(); // a redelivered suffix, too
    }
    pipe2.flush().unwrap();
    let stats2 = pipe2.shutdown().unwrap();
    assert_eq!(stats2.applied, 0, "replay must not re-apply anything");
    assert_eq!(
        stats2.deduped,
        (recs.len() + recs.len() - recs.len() / 2) as u64
    );
    assert_eq!(
        graph_fingerprint(&client),
        parallel_fp,
        "replay changed the graph"
    );
}

/// (b) with DR on: dedup also keeps the replication log quiet.
#[test]
fn replayed_records_write_no_replication_log_entries() {
    let (recs, p1, p2) = stream();
    let (cluster, _client) = fresh_cluster(4, true);
    let pipe = IngestPipeline::start(&cluster, parallel_cfg()).unwrap();
    ingest_stream(&pipe, &recs, p1, p2);
    let inner = cluster.inner();
    let log = inner.replog.as_ref().unwrap();
    let len = log.len(&inner.farm, a1_core::MachineId(0)).unwrap();
    assert!(len >= recs.len(), "every applied mutation logged");

    let wm = pipe.watermarks();
    pipe.shutdown().unwrap();
    let pipe2 = IngestPipeline::start(
        &cluster,
        IngestConfig {
            resume_watermarks: Some(wm),
            ..parallel_cfg()
        },
    )
    .unwrap();
    ingest_stream(&pipe2, &recs, p1, p2);
    pipe2.shutdown().unwrap();
    assert_eq!(
        log.len(&inner.farm, a1_core::MachineId(0)).unwrap(),
        len,
        "deduped replay must append nothing to the replication log"
    );
}

/// (c) throughput: batched parallel ingest ≥ 3x the single-op baseline on
/// the latency-injected 8-machine cluster (the suite snapshotted in
/// `BENCH_3.json`; it also cross-checks that every mode loaded the same
/// graph).
#[test]
fn bench_suite_parallel_beats_single_op_3x() {
    let results = a1_bench::run_ingest_suite(true);
    let rps = |mode: &str| {
        results
            .iter()
            .find(|r| r.mode == mode)
            .expect("mode measured")
            .records_per_sec
    };
    assert!(
        rps("parallel") >= 3.0 * rps("single-op"),
        "batched parallel ingest {:.0} rec/s !>= 3x single-op {:.0} rec/s",
        rps("parallel"),
        rps("single-op")
    );
    // Group commit alone must already beat the baseline.
    assert!(rps("group-commit") > rps("single-op"));
    // And the suite's JSON round-trips for the BENCH_3 snapshot.
    let j = a1_bench::ingest_suite_to_json(&results);
    let parsed = Json::parse(&j.to_string()).unwrap();
    assert_eq!(parsed.as_arr().unwrap().len(), 3);
}

/// Wire-protocol compat (ISSUE 4): a replication log whose early entries
/// were written by a pre-binary build (JSON text bodies) and whose later
/// entries are binary frames replays byte-for-byte through the §4 DR path —
/// one log, two eras, one reader.
#[test]
fn mixed_format_replog_replays_through_dr() {
    use a1_core::replog::{entry, Replog};
    use a1_core::{MachineId, WireFormat};
    use a1_objectstore::{ObjectStore, StoreConfig};
    use a1_recovery::{recover_consistent, Replicator};

    // "JSON era": a cluster forced onto the legacy wire writes its
    // replication-log entries as JSON text (what pre-binary builds did).
    let mut cfg = A1Config::small(3);
    cfg.dr_enabled = true;
    cfg.wire_format = WireFormat::Json;
    let cluster = A1Cluster::start(cfg).unwrap();
    let client = cluster.client();
    client.create_tenant(TENANT).unwrap();
    client.create_graph(TENANT, GRAPH).unwrap();
    client
        .create_vertex_type(TENANT, GRAPH, SCHEMA, "id", &["rank"])
        .unwrap();
    client
        .create_edge_type(TENANT, GRAPH, r#"{"name": "link", "fields": []}"#)
        .unwrap();
    for (id, rank) in [("old1", 1), ("old2", 2)] {
        client
            .create_vertex(
                TENANT,
                GRAPH,
                "entity",
                &format!(r#"{{"id": "{id}", "rank": {rank}}}"#),
            )
            .unwrap();
    }
    client
        .create_edge(
            TENANT,
            GRAPH,
            "entity",
            &Json::str("old1"),
            "link",
            "entity",
            &Json::str("old2"),
            None,
        )
        .unwrap();

    // "Binary era": the post-upgrade build opens the *same* log (binary is
    // the default format for new entries) and data keeps flowing — here two
    // vertex upserts and an edge, applied through the batch path so the log
    // entries correspond to real writes.
    let inner = cluster.inner();
    let json_era_len = inner
        .replog
        .as_ref()
        .unwrap()
        .len(&inner.farm, MachineId(0))
        .unwrap();
    assert!(json_era_len >= 3);
    let binlog = Replog::open(cluster.farm(), inner.replog.as_ref().unwrap().header()).unwrap();
    for (id, rank) in [("new1", 3), ("new2", 4)] {
        let body = entry::vertex_upsert(
            TENANT,
            GRAPH,
            "entity",
            &Json::str(id),
            &Json::obj(vec![
                ("id", Json::str(id)),
                ("rank", Json::Num(rank as f64)),
            ]),
        );
        let log = binlog.clone();
        cluster
            .farm()
            .run(MachineId(0), move |tx| {
                log.append(tx, &body)
                    .map_err(|_| a1_farm::FarmError::Conflict)
            })
            .unwrap();
    }

    // The log now physically mixes the two encodings: JSON-era entries are
    // text ('{'), binary-era entries start with the frame magic 0xA1.
    let pending = binlog
        .fetch_pending(&inner.farm, MachineId(0), usize::MAX)
        .unwrap();
    assert_eq!(pending.len(), json_era_len + 2);
    let mut tx = inner.farm.begin_read_only(MachineId(0));
    let first_bytes: Vec<u8> = pending
        .iter()
        .map(|e| tx.read(e.ptr).unwrap().data()[0])
        .collect();
    drop(tx);
    assert!(first_bytes.contains(&b'{'), "JSON-era entries present");
    assert!(first_bytes.contains(&0xA1), "binary-era entries present");
    // Every body decodes to the shared mutation vocabulary.
    for e in &pending {
        Mutation::from_json(&e.body).unwrap();
    }

    // Replay the whole mixed log through the DR pipeline and recover a
    // fresh cluster from the durable copy: both eras must be there.
    let store = ObjectStore::new(StoreConfig::default());
    let repl = Replicator::new(cluster.clone(), store).unwrap();
    repl.replicate_catalog().unwrap();
    let flushed = repl.sweep_all().unwrap();
    assert_eq!(flushed, json_era_len + 2);
    repl.update_watermark().unwrap();
    let (recovered, report) =
        recover_consistent(repl.store(), A1Config::small(2), TENANT, GRAPH).unwrap();
    assert_eq!(
        report.vertices, 4,
        "old1/old2 (JSON era) + new1/new2 (binary era)"
    );
    assert_eq!(report.edges, 1);
    let rclient = recovered.client();
    for (id, rank) in [("old1", 1.0), ("old2", 2.0), ("new1", 3.0), ("new2", 4.0)] {
        let v = rclient
            .get_vertex(TENANT, GRAPH, "entity", &Json::str(id))
            .unwrap()
            .unwrap_or_else(|| panic!("{id} missing after mixed-era replay"));
        assert_eq!(v.get("rank"), Some(&Json::Num(rank)), "{id}");
    }
}
