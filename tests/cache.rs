//! Cross-query hot-vertex read cache: cached and cache-bypass clients must
//! return byte-identical answers under every coordinator configuration
//! while ingest rewrites the hot set, eviction pressure must never change
//! an answer, and a freed (deleted/reallocated) address must miss rather
//! than fabricate a read from a stale entry.

use a1::core::{A1Cluster, A1Config, CacheConfig, Json, MachineId, Mutation, QueryOutcome};
use a1_bench::cache::{
    build_graph, count_query, rows_query, CacheGraphSpec, GRAPH, TENANT, UNCACHED_CLIENT,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn small_spec() -> CacheGraphSpec {
    CacheGraphSpec {
        hubs: 16,
        payload_bytes: 256,
    }
}

fn cache_cfg(capacity_bytes: usize) -> A1Config {
    A1Config::small(4).with_cache(CacheConfig {
        enabled: true,
        capacity_bytes,
        bypass_clients: vec![UNCACHED_CLIENT.to_string()],
    })
}

/// Render an outcome order-independently: the merge order is deterministic
/// per config but differs across coordinator configs, and the comparison
/// here is about row *content*.
fn render(out: &QueryOutcome) -> String {
    match out.count {
        Some(c) => format!("count:{c}"),
        None => {
            let mut rows: Vec<String> = out.rows.iter().map(Json::to_string).collect();
            rows.sort();
            rows.join("|")
        }
    }
}

fn hub_rewrite(i: usize, salt: u64) -> Mutation {
    Mutation::UpsertVertex {
        tenant: TENANT.into(),
        graph: GRAPH.into(),
        ty: "entity".into(),
        attrs: Json::obj(vec![
            ("id", Json::str(&format!("hub{i:04}"))),
            ("rank", Json::Num(1.0)),
            ("payload", Json::str(&format!("rewrite-{salt}"))),
        ]),
    }
}

/// Spawn writers that rewrite hub payloads through the batch-apply path
/// (the invalidation choke point) for the duration of `body`.
fn with_churn(cluster: &A1Cluster, hubs: usize, body: impl FnOnce()) -> u64 {
    let stop = Arc::new(AtomicBool::new(false));
    let writes = Arc::new(AtomicU64::new(0));
    let mut writers = Vec::new();
    for w in 0..2u64 {
        let client = cluster.client();
        let stop = stop.clone();
        let writes = writes.clone();
        writers.push(std::thread::spawn(move || {
            let mut salt = w;
            while !stop.load(Ordering::Relaxed) {
                let i = (salt as usize) % hubs;
                // Hubs live on machine 0 (the bench builder pins them), so
                // rewrite them there; every commit invalidates the touched
                // addresses on every backend's cache.
                if client
                    .apply_batch_at(MachineId(0), &[hub_rewrite(i, salt)])
                    .is_ok()
                {
                    writes.fetch_add(1, Ordering::Relaxed);
                }
                salt += 2;
            }
        }));
    }
    body();
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    writes.load(Ordering::Relaxed)
}

/// The tentpole's correctness contract, across every coordinator shape: a
/// cached client and a bypass client on the *same* cluster see the same
/// committed state at every instant — byte-identical rows and counts —
/// while ingest rewrites the hot set underneath them. {serial, fan-out,
/// morsel} cover the three work-op read paths that consult the cache.
#[test]
fn cached_answers_match_bypass_under_concurrent_ingest() {
    let spec = small_spec();
    let configs: [(&str, A1Config); 3] = [
        ("serial", cache_cfg(1 << 20).with_fanout(1)),
        ("fan-out", cache_cfg(1 << 20).with_fanout(0)),
        ("morsel", {
            let mut c = cache_cfg(1 << 20).with_fanout(0).with_intra_parallelism(0);
            c.farm.fabric.threads_per_machine = 4;
            c
        }),
    ];
    for (name, cfg) in configs {
        let cluster = build_graph(cfg, &spec);
        let cached = cluster.client().with_client_id("reader");
        let uncached = cluster.client().with_client_id(UNCACHED_CLIENT);
        let queries = [count_query(), rows_query()];
        let writes = with_churn(&cluster, spec.hubs, || {
            let mut handles = Vec::new();
            for t in 0..3usize {
                let cached = cached.clone();
                let uncached = uncached.clone();
                let queries = queries.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..10 {
                        let q = &queries[(t + i) % 2];
                        let c = cached.query(TENANT, GRAPH, q).unwrap();
                        let u = uncached.query(TENANT, GRAPH, q).unwrap();
                        // Not a snapshot pair — but the churn only rewrites
                        // payloads, never ranks or ids, so the answer is
                        // invariant across every committed state.
                        assert_eq!(
                            render(&c),
                            render(&u),
                            "[{}] cached diverged from bypass",
                            std::thread::current().name().unwrap_or("?")
                        );
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        assert!(writes > 0, "{name}: churn never committed");
        let stats = cluster.cache_stats();
        assert!(stats.hits > 0, "{name}: the cached client never hit");
    }
}

/// A capacity so small the hot set cannot fit forces constant eviction and
/// refill; answers must stay exact and the occupancy bound must hold.
#[test]
fn eviction_under_capacity_pressure_keeps_answers_exact() {
    let spec = CacheGraphSpec {
        hubs: 16,
        payload_bytes: 2048,
    };
    // 16 shards × 1 KiB: a ~2 KiB hub record oversizes every shard budget,
    // so hubs sharing a shard evict each other on every refill.
    let capacity = 16 << 10;
    let cluster = build_graph(cache_cfg(capacity).with_fanout(0), &spec);
    let cached = cluster.client().with_client_id("reader");
    let uncached = cluster.client().with_client_id(UNCACHED_CLIENT);
    let expected = spec.hubs as u64;
    for q in [count_query(), rows_query()] {
        for _ in 0..8 {
            let c = cached.query(TENANT, GRAPH, &q).unwrap();
            let u = uncached.query(TENANT, GRAPH, &q).unwrap();
            assert_eq!(render(&c), render(&u), "eviction pressure changed rows");
            if let Some(count) = c.count {
                assert_eq!(count, expected);
            }
        }
    }
    let stats = cluster.cache_stats();
    assert!(
        stats.evictions > 0,
        "capacity pressure never evicted (bytes={}, capacity={capacity})",
        stats.bytes
    );
    // The CLOCK sweep retains at most one (possibly oversized) entry per
    // shard, so occupancy is bounded by shards × entry-cost, far below the
    // full hot set's footprint.
    assert!(
        stats.entries < spec.hubs as u64,
        "pressure never bounded occupancy: {} entries resident",
        stats.entries
    );
    assert!(
        stats.bytes <= 16 * 4096,
        "cache overran the one-entry-per-shard bound: {} bytes",
        stats.bytes
    );
}

/// Regression for the freed/reused-address interaction audited in the
/// read path: delete a hub whose header + record sit in the cache, then
/// re-create it (the allocator may hand back the same slot). No query may
/// ever fabricate the dead vertex from the stale entry — deletion
/// invalidates the address on every backend, and even a raced probe sees
/// a freed or re-versioned header and misses.
#[test]
fn deleted_then_recreated_hub_never_serves_stale_cache() {
    let spec = small_spec();
    let cluster = build_graph(cache_cfg(1 << 20).with_fanout(0), &spec);
    let cached = cluster.client().with_client_id("reader");
    let uncached = cluster.client().with_client_id(UNCACHED_CLIENT);

    // Warm: every hub's header + record is now cached.
    for _ in 0..2 {
        cached.query(TENANT, GRAPH, &rows_query()).unwrap();
    }
    assert!(cluster.cache_stats().entries > 0, "warm-up cached nothing");

    // Delete hub0007 — frees its header and data objects and rewrites the
    // root's adjacency.
    cached
        .apply_batch(&[Mutation::DeleteVertex {
            tenant: TENANT.into(),
            graph: GRAPH.into(),
            ty: "entity".into(),
            id: Json::str("hub0007"),
        }])
        .unwrap();
    let c = cached.query(TENANT, GRAPH, &rows_query()).unwrap();
    let u = uncached.query(TENANT, GRAPH, &rows_query()).unwrap();
    assert_eq!(render(&c), render(&u), "cached rows diverged after delete");
    assert_eq!(c.rows.len(), spec.hubs - 1, "deleted hub still emitted");
    assert!(
        !render(&c).contains("hub0007"),
        "stale cache fabricated the deleted hub"
    );

    // Re-create the same id (possibly reusing the freed slot) with a fresh
    // payload and a fresh edge; both clients see exactly the new vertex.
    cached
        .apply_batch(&[
            hub_rewrite(7, 9999),
            Mutation::UpsertEdge {
                tenant: TENANT.into(),
                graph: GRAPH.into(),
                src_type: "entity".into(),
                src_id: Json::str("root"),
                edge_type: "fan".into(),
                dst_type: "entity".into(),
                dst_id: Json::str("hub0007"),
                data: None,
            },
        ])
        .unwrap();
    let c = cached.query(TENANT, GRAPH, &rows_query()).unwrap();
    let u = uncached.query(TENANT, GRAPH, &rows_query()).unwrap();
    assert_eq!(
        render(&c),
        render(&u),
        "cached rows diverged after re-create"
    );
    assert_eq!(c.rows.len(), spec.hubs, "re-created hub missing");
    assert!(render(&c).contains("hub0007"));
    assert_eq!(
        c.count.or(Some(c.rows.len() as u64)),
        u.count.or(Some(u.rows.len() as u64))
    );
}

/// The per-client bypass knob and the global disable knob both force the
/// uncached path: no hits, no entries, same answers.
#[test]
fn disabled_cache_serves_identical_answers_with_no_entries() {
    let spec = small_spec();
    let mut cfg = cache_cfg(1 << 20).with_fanout(0);
    cfg.cache.enabled = false;
    let cluster = build_graph(cfg, &spec);
    let client = cluster.client().with_client_id("reader");
    let expected = spec.hubs as u64;
    for _ in 0..3 {
        let out = client.query(TENANT, GRAPH, &count_query()).unwrap();
        assert_eq!(out.count.unwrap(), expected);
    }
    let stats = cluster.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.entries),
        (0, 0, 0),
        "disabled cache still saw traffic"
    );
}
