//! Front-door serving behavior: admission control, structured `Overloaded`
//! rejections over both wire formats, per-client quotas, and the
//! continuation-table sweep for admission-rejected page requests.
//!
//! Every scenario is deterministic: [`A1Cluster::hold_admission_slot`]
//! drives the front door to its limit without depending on query timing,
//! and single-machine clusters pin request routing.

use a1::core::{A1Config, A1Error, AdmissionConfig, MachineId, WireFormat};
use a1_bench::workload::{KnowledgeGraph, KnowledgeGraphSpec, GRAPH, TENANT};

const M0: MachineId = MachineId(0);

fn kg_with(cfg: A1Config) -> KnowledgeGraph {
    KnowledgeGraph::load(cfg, KnowledgeGraphSpec::tiny())
}

#[test]
fn overloaded_is_structured_on_both_wire_formats() {
    for fmt in [WireFormat::Binary, WireFormat::Json] {
        let cfg = A1Config::small(1)
            .with_wire_format(fmt)
            .with_admission(AdmissionConfig {
                max_inflight_queries: 1,
                ..AdmissionConfig::default()
            });
        let kg = kg_with(cfg);

        // Fill the machine's only slot, then knock on the front door.
        let permit = kg.cluster.hold_admission_slot(M0, "hog").unwrap();
        let err = kg.client.query(TENANT, GRAPH, &kg.q1()).unwrap_err();
        match err {
            A1Error::Overloaded { retry_after_ms } => {
                // The retry-after hint survives the wire round-trip in this
                // format (it rides the structured error frame, not the
                // message text).
                assert!(retry_after_ms >= 1, "{fmt:?}: empty retry-after hint");
            }
            other => panic!("{fmt:?}: expected Overloaded, got {other}"),
        }
        assert!(
            !err.is_retryable(),
            "retry is the client's job, after backoff"
        );

        // Once load drains (the permit drops), the retried request succeeds
        // and answers exactly like an unloaded cluster.
        drop(permit);
        let out = kg.client.query(TENANT, GRAPH, &kg.q1()).unwrap();
        assert!(out.count.unwrap() > 0, "{fmt:?}: retried query lost rows");
    }
}

#[test]
fn inflight_quota_is_per_client_not_global() {
    let cfg = A1Config::small(1).with_admission(AdmissionConfig {
        max_inflight_per_client: 1,
        ..AdmissionConfig::default()
    });
    let kg = kg_with(cfg);

    // Client "a" saturates only its own bucket...
    let held = kg.cluster.hold_admission_slot(M0, "a").unwrap();
    let err = kg
        .client
        .clone()
        .with_client_id("a")
        .query(TENANT, GRAPH, &kg.q1())
        .unwrap_err();
    assert!(matches!(err, A1Error::Overloaded { .. }), "got {err}");

    // ...while "b" and the anonymous bucket are untouched.
    kg.client
        .clone()
        .with_client_id("b")
        .query(TENANT, GRAPH, &kg.q1())
        .unwrap();
    kg.client.query(TENANT, GRAPH, &kg.q1()).unwrap();

    // "a" recovers as soon as its own in-flight request finishes.
    drop(held);
    kg.client
        .clone()
        .with_client_id("a")
        .query(TENANT, GRAPH, &kg.q1())
        .unwrap();
}

#[test]
fn continuation_quota_evicts_same_client_oldest() {
    let mut cfg = A1Config::small(1).with_admission(AdmissionConfig {
        max_continuations_per_client: 1,
        ..AdmissionConfig::default()
    });
    cfg.exec.page_size = 1; // every multi-row answer pages
    let kg = kg_with(cfg);
    let rows_q = kg.q1().replace("_count(*)", "*");

    let a = kg.client.clone().with_client_id("a");
    let b = kg.client.clone().with_client_id("b");

    // "a" opens two paged queries; the quota of one evicts the older.
    let first = a.query(TENANT, GRAPH, &rows_q).unwrap();
    let first_token = first.continuation.expect("page_size=1 must page");
    assert_eq!(kg.cluster.continuation_count(M0), 1);
    let second = a.query(TENANT, GRAPH, &rows_q).unwrap();
    let second_token = second.continuation.expect("page_size=1 must page");
    assert_eq!(
        kg.cluster.continuation_count(M0),
        1,
        "client 'a' may hold one continuation, not two"
    );

    // "b" pages alongside — a's quota never touches b's entry.
    let b_token = b
        .query(TENANT, GRAPH, &rows_q)
        .unwrap()
        .continuation
        .unwrap();
    assert_eq!(kg.cluster.continuation_count(M0), 2);

    // The evicted query must restart; the live ones page on.
    let err = a.query_next(&first_token).unwrap_err();
    assert!(matches!(err, A1Error::ContinuationExpired), "got {err}");
    assert!(!a.query_next(&second_token).unwrap().rows.is_empty());
    assert!(!b.query_next(&b_token).unwrap().rows.is_empty());
}

#[test]
fn rejected_page_request_sweeps_its_continuation() {
    let mut cfg = A1Config::small(1).with_admission(AdmissionConfig {
        max_inflight_queries: 1,
        ..AdmissionConfig::default()
    });
    cfg.exec.page_size = 1;
    let kg = kg_with(cfg);
    let rows_q = kg.q1().replace("_count(*)", "*");

    // A paged query parks its remainder in the continuation table.
    let out = kg.client.query(TENANT, GRAPH, &rows_q).unwrap();
    let token = out.continuation.expect("page_size=1 must page");
    assert_eq!(kg.cluster.continuation_count(M0), 1);

    // Its next-page request arrives while the machine is saturated: the
    // request is shed AND the parked rows go with it — the cached pages are
    // exactly the memory the rejection is shedding, so they must not sit
    // out the TTL.
    let permit = kg.cluster.hold_admission_slot(M0, "hog").unwrap();
    let err = kg.client.query_next(&token).unwrap_err();
    assert!(matches!(err, A1Error::Overloaded { .. }), "got {err}");
    assert_eq!(
        kg.cluster.continuation_count(M0),
        0,
        "rejected page request leaked its continuation entry"
    );

    // After load drains the token is gone for good — the client restarts
    // the query rather than resuming a swept one.
    drop(permit);
    let err = kg.client.query_next(&token).unwrap_err();
    assert!(matches!(err, A1Error::ContinuationExpired), "got {err}");
    kg.client.query(TENANT, GRAPH, &rows_q).unwrap();
}
