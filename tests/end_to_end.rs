//! Workspace-level integration: the full stack from workload generation
//! through distributed query execution, across all crates.

use a1::core::{A1Config, Json};
use a1_bench::workload::{KnowledgeGraph, KnowledgeGraphSpec, GRAPH, TENANT};

#[test]
fn knowledge_graph_queries_end_to_end() {
    let kg = KnowledgeGraph::load(A1Config::small(5), KnowledgeGraphSpec::tiny());

    // Q1: the hub director's collaborators, deduplicated.
    let q1 = kg.client.query(TENANT, GRAPH, &kg.q1()).unwrap();
    let count = q1.count.unwrap();
    assert!(count > 0 && count <= kg.spec.actor_pool as u64);
    assert_eq!(q1.metrics.hops, 2);

    // The same query with rows instead of a count returns `count` rows.
    let rows_q = kg.q1().replace("_count(*)", "*");
    let q1_rows = kg.client.query(TENANT, GRAPH, &rows_q).unwrap();
    assert_eq!(q1_rows.rows.len() as u64, count);

    // Q2 finds only Batman performers (one per character film at most).
    let q2 = kg.client.query(TENANT, GRAPH, &kg.q2()).unwrap();
    assert!(q2.count.unwrap() <= kg.spec.character_films as u64);

    // Q3's star pattern is a subset of the director's films.
    let q3 = kg.client.query(TENANT, GRAPH, &kg.q3()).unwrap();
    assert!(q3.rows.len() <= kg.spec.hub_films);

    // Q4 stress traversal touches the most vertices of the four.
    let q4 = kg.client.query(TENANT, GRAPH, &kg.q4()).unwrap();
    assert!(q4.metrics.vertices_read >= q2.metrics.vertices_read);
}

#[test]
fn snapshot_queries_are_stable_under_concurrent_writes() {
    let kg = KnowledgeGraph::load(A1Config::small(4), KnowledgeGraphSpec::tiny());
    let client = kg.client.clone();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Writers churn vertex attributes while readers run multi-hop queries.
    let writer = {
        let client = client.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = client.update_vertex(
                    TENANT,
                    GRAPH,
                    "entity",
                    &format!(r#"{{"id": "actor00001", "rank": {}}}"#, i % 100),
                );
                i += 1;
            }
        })
    };
    let expected = client
        .query(TENANT, GRAPH, &kg.q1())
        .unwrap()
        .count
        .unwrap();
    for _ in 0..30 {
        let out = client.query(TENANT, GRAPH, &kg.q1()).unwrap();
        assert_eq!(
            out.count.unwrap(),
            expected,
            "topology untouched by attribute churn"
        );
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}

#[test]
fn concurrent_clients_counters_are_exact() {
    // The paper's Fig. 3 pattern, end-to-end through the A1 client API:
    // concurrent read-modify-write updates must not lose increments.
    let kg = KnowledgeGraph::load(A1Config::small(4), KnowledgeGraphSpec::tiny());
    kg.client
        .create_vertex(TENANT, GRAPH, "entity", r#"{"id": "counter", "rank": 0}"#)
        .unwrap();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let client = kg.client.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..25 {
                loop {
                    // Read-modify-write *within one transaction* (Fig. 3):
                    // the read must be inside the txn so commit-time
                    // validation protects it.
                    let mut txn = client.transaction();
                    let cur = match txn.get_vertex(TENANT, GRAPH, "entity", &Json::str("counter")) {
                        Ok(v) => v.unwrap(),
                        Err(e) if e.is_retryable() => {
                            txn.abort();
                            continue;
                        }
                        Err(e) => panic!("{e}"),
                    };
                    let rank = cur.get("rank").and_then(Json::as_i64).unwrap_or(0);
                    // On conflict (either at the buffered write — opacity
                    // aborts stale reads eagerly — or at commit), retry the
                    // whole read-modify-write. Using commit_with_retry here
                    // would replay the *stale* rank.
                    let staged = txn.update_vertex(
                        TENANT,
                        GRAPH,
                        "entity",
                        &Json::parse(&format!(r#"{{"id": "counter", "rank": {}}}"#, rank + 1))
                            .unwrap(),
                    );
                    match staged {
                        Ok(()) => {}
                        Err(e) if e.is_retryable() => {
                            txn.abort();
                            continue;
                        }
                        Err(e) => panic!("{e}"),
                    }
                    match txn.commit() {
                        Ok(()) => break,
                        Err(e) if e.is_retryable() => continue,
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let v = kg
        .client
        .get_vertex(TENANT, GRAPH, "entity", &Json::str("counter"))
        .unwrap()
        .unwrap();
    assert_eq!(v.get("rank").unwrap().as_i64(), Some(100));
}

#[test]
fn umbrella_crate_reexports() {
    // The `a1` facade exposes the stack layers.
    let _cfg = a1::farm::FarmConfig::small(1);
    let _lat = a1::rdma::LatencyModel::default();
    let parsed = a1::core::Json::parse(r#"{"id": "x"}"#).unwrap();
    assert_eq!(parsed.get("id").unwrap().as_str(), Some("x"));
}
