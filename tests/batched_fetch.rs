//! Batched one-sided fetch path: the doorbell-coalesced prefetch must
//! return byte-identical answers to the scalar read loop — under churn,
//! under every ship policy, and under every coordinator shape — while
//! cutting the one-sided verb count per query.

use a1::core::query::ShipPolicy;
use a1::core::{A1Cluster, A1Config, CacheConfig, Json, MachineId, Mutation, QueryOutcome};
use a1_bench::cache::{
    build_graph, count_query, rows_query, CacheGraphSpec, GRAPH, TENANT, UNCACHED_CLIENT,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const HUBS: usize = 16;

fn small_spec() -> CacheGraphSpec {
    CacheGraphSpec {
        hubs: HUBS,
        payload_bytes: 256,
    }
}

/// The inline-fetch configuration the batching accelerates: shipping
/// disabled so the coordinator evaluates every remote hub with one-sided
/// reads, serial work-op loop so verb counts are deterministic.
fn fetch_cfg(batched: bool, cache: bool) -> A1Config {
    let mut cfg = A1Config::small(4)
        .with_cache(CacheConfig {
            enabled: cache,
            capacity_bytes: 64 << 20,
            bypass_clients: vec![UNCACHED_CLIENT.to_string()],
        })
        .with_intra_parallelism(1);
    cfg.exec.ship_policy = ShipPolicy::Fixed(usize::MAX);
    cfg.exec.batched_fetch = batched;
    cfg
}

/// Render an outcome order-independently (merge order differs across
/// coordinator shapes; the comparison is about row content).
fn render(out: &QueryOutcome) -> String {
    match out.count {
        Some(c) => format!("count:{c}"),
        None => {
            let mut rows: Vec<String> = out.rows.iter().map(Json::to_string).collect();
            rows.sort();
            rows.join("|")
        }
    }
}

fn hub_rewrite(i: usize, salt: u64) -> Mutation {
    Mutation::UpsertVertex {
        tenant: TENANT.into(),
        graph: GRAPH.into(),
        ty: "entity".into(),
        attrs: Json::obj(vec![
            ("id", Json::str(&format!("hub{i:04}"))),
            ("rank", Json::Num(1.0)),
            ("payload", Json::str(&format!("rewrite-{salt}"))),
        ]),
    }
}

/// Two writers rewriting hub payloads through the batch-apply path for the
/// duration of `body`. The churn only touches payloads — never ranks, ids,
/// or edges — so every query answer is invariant across committed states.
fn with_churn(cluster: &A1Cluster, body: impl FnOnce()) -> u64 {
    let stop = Arc::new(AtomicBool::new(false));
    let writes = Arc::new(AtomicU64::new(0));
    let mut writers = Vec::new();
    for w in 0..2u64 {
        let client = cluster.client();
        let stop = stop.clone();
        let writes = writes.clone();
        writers.push(std::thread::spawn(move || {
            let mut salt = w;
            while !stop.load(Ordering::Relaxed) {
                let i = (salt as usize) % HUBS;
                if client
                    .apply_batch_at(MachineId(0), &[hub_rewrite(i, salt)])
                    .is_ok()
                {
                    writes.fetch_add(1, Ordering::Relaxed);
                }
                salt += 2;
            }
        }));
    }
    body();
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    writes.load(Ordering::Relaxed)
}

/// Satellite regression: cache revalidation probes ride the doorbell batch.
/// Two clusters over the same deterministic graph — one scalar, one batched
/// — must agree byte-for-byte while churn rewrites the hot set, and the
/// batched coordinator must post a fraction of the scalar verb count.
#[test]
fn batched_revalidation_cuts_verbs_with_identical_answers() {
    let spec = small_spec();
    let scalar_cl = build_graph(fetch_cfg(false, true), &spec);
    let batched_cl = build_graph(fetch_cfg(true, true), &spec);
    let coord = |cl: &A1Cluster, client: &str, q: &str| {
        cl.inner()
            .coordinate_query_for(MachineId(1), TENANT, GRAPH, q, client)
            .expect("query")
    };

    // Warm both caches: headers + records for every hub are now resident,
    // so each subsequent query revalidates all 16 entries with probes.
    for cl in [&scalar_cl, &batched_cl] {
        for _ in 0..2 {
            coord(cl, "reader", &rows_query());
            coord(cl, "reader", &count_query());
        }
    }

    let s = coord(&scalar_cl, "reader", &count_query());
    let b = coord(&batched_cl, "reader", &count_query());
    assert_eq!(render(&s), render(&b), "warm answers diverged");
    assert!(s.metrics.cache_hits > 0 && b.metrics.cache_hits > 0);
    // Scalar: one HEADER probe verb per cached hub. Batched: the whole
    // morsel's probes coalesce into one doorbell, so the per-query verb
    // count collapses to the root evaluation plus a handful of posts.
    assert!(
        b.metrics.fetch_verbs * 2 <= s.metrics.fetch_verbs,
        "batched revalidation did not cut verbs: {} vs {}",
        b.metrics.fetch_verbs,
        s.metrics.fetch_verbs
    );

    // Byte-identity under churn, on both clusters at once, with the cached
    // and bypass clients cross-checked inside the batched cluster (the
    // bypass client exercises batched *uncached* reads of the same state).
    let writes = with_churn(&scalar_cl, || {
        let inner_writes = with_churn(&batched_cl, || {
            for i in 0..10 {
                let q = if i % 2 == 0 {
                    count_query()
                } else {
                    rows_query()
                };
                let s = coord(&scalar_cl, "reader", &q);
                let b = coord(&batched_cl, "reader", &q);
                let u = coord(&batched_cl, UNCACHED_CLIENT, &q);
                assert_eq!(render(&s), render(&b), "scalar/batched diverged");
                assert_eq!(render(&b), render(&u), "cached/bypass diverged");
            }
        });
        assert!(inner_writes > 0, "batched-cluster churn never committed");
    });
    assert!(writes > 0, "scalar-cluster churn never committed");
}

/// Uncached inline fetch (headers + records, no cache to probe): the
/// two-round doorbell prefetch must agree with the scalar loop and post at
/// least 4x fewer verbs on the hub morsel.
#[test]
fn batched_uncached_fetch_matches_scalar_with_fewer_verbs() {
    let spec = small_spec();
    let scalar_cl = build_graph(fetch_cfg(false, false), &spec);
    let batched_cl = build_graph(fetch_cfg(true, false), &spec);
    let coord = |cl: &A1Cluster, q: &str| {
        cl.inner()
            .coordinate_query(MachineId(1), TENANT, GRAPH, q)
            .expect("query")
    };
    for q in [count_query(), rows_query()] {
        let s = coord(&scalar_cl, &q);
        let b = coord(&batched_cl, &q);
        assert_eq!(render(&s), render(&b), "answers diverged on {q}");
        // Scalar pays header+record verbs per hub (32 for the morsel);
        // batched pays one doorbell per round. The root evaluation's few
        // scalar posts are shared by both sides.
        assert!(
            b.metrics.fetch_verbs * 4 <= s.metrics.fetch_verbs,
            "verb reduction below 4x: {} vs {}",
            b.metrics.fetch_verbs,
            s.metrics.fetch_verbs
        );
    }
}

/// The ship-vs-fetch decision must never change an answer: {serial,
/// fan-out, morsel} coordinators x {Fixed(1), Fixed(4), Cost} policies over
/// the same deterministic hub graph, queried under two-writer churn, all
/// render byte-identically.
#[test]
fn ship_policy_matrix_is_byte_identical_under_churn() {
    let spec = small_spec();
    let policies: [(&str, ShipPolicy); 3] = [
        ("fixed1", ShipPolicy::Fixed(1)),
        ("fixed4", ShipPolicy::Fixed(4)),
        ("cost", ShipPolicy::Cost),
    ];
    let shape = |name: &str| -> A1Config {
        let base = A1Config::small(4);
        match name {
            "serial" => base.with_fanout(1),
            "fan-out" => base.with_fanout(0),
            _ => {
                let mut c = base.with_fanout(0).with_intra_parallelism(0);
                c.farm.fabric.threads_per_machine = 4;
                c
            }
        }
    };

    // Reference renders from one pristine cluster (deterministic build,
    // churn-invariant answers: every config must reproduce these exactly).
    let reference: Vec<String> = {
        let cluster = build_graph(shape("serial"), &spec);
        let client = cluster.client();
        [count_query(), rows_query()]
            .iter()
            .map(|q| render(&client.query(TENANT, GRAPH, q).unwrap()))
            .collect()
    };
    assert_eq!(reference[0], format!("count:{HUBS}"));

    for shape_name in ["serial", "fan-out", "morsel"] {
        for (policy_name, policy) in policies {
            let mut cfg = shape(shape_name);
            cfg.exec.ship_policy = policy;
            let cluster = build_graph(cfg, &spec);
            let client = cluster.client();
            let writes = with_churn(&cluster, || {
                for i in 0..6 {
                    let (q, want) = if i % 2 == 0 {
                        (count_query(), &reference[0])
                    } else {
                        (rows_query(), &reference[1])
                    };
                    let out = client.query(TENANT, GRAPH, &q).unwrap();
                    assert_eq!(
                        &render(&out),
                        want,
                        "[{shape_name}/{policy_name}] answer diverged"
                    );
                }
            });
            assert!(writes > 0, "[{shape_name}/{policy_name}] churn never ran");
        }
    }
}
