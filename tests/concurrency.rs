//! Concurrent distributed coordination: many simultaneous multi-hop queries
//! from multiple client threads under the parallel per-hop fan-out, with
//! every result cross-checked against the serial (`fanout_parallelism = 1`)
//! coordinator — including while a machine is killed mid-stream.

use a1::core::{A1Config, Json, MachineId};
use a1_bench::workload::{KnowledgeGraph, KnowledgeGraphSpec, GRAPH, TENANT};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn load(fanout: usize, machines: u32) -> KnowledgeGraph {
    KnowledgeGraph::load(
        A1Config::small(machines).with_fanout(fanout),
        KnowledgeGraphSpec::tiny(),
    )
}

/// Render a query outcome as a stable string: the count, or the rows in
/// coordinator merge order (which is deterministic by MachineId).
fn render(out: &a1::core::QueryOutcome) -> String {
    match out.count {
        Some(c) => format!("count:{c}"),
        None => out
            .rows
            .iter()
            .map(Json::to_string)
            .collect::<Vec<_>>()
            .join("|"),
    }
}

fn answer(kg: &KnowledgeGraph, text: &str) -> String {
    render(&kg.client.query(TENANT, GRAPH, text).unwrap())
}

fn all_answers(kg: &KnowledgeGraph) -> Vec<(String, String)> {
    [
        ("q1", kg.q1()),
        ("q2", kg.q2()),
        ("q3", kg.q3()),
        ("q4", kg.q4()),
    ]
    .into_iter()
    .map(|(name, text)| (name.to_string(), answer(kg, &text)))
    .collect()
}

#[test]
fn parallel_results_match_serial_baseline() {
    // ship_threshold = 1 so even the tiny graph's per-machine batches go
    // over the RPC ship path rather than inline one-sided reads. The
    // network model is scaled into the injector's sleep regime so the
    // overlap assertion below is deterministic on a single-core runner
    // (instant RPCs can finish before the next pool worker starts).
    let mk = |fanout: usize| {
        let mut cfg = A1Config::small(6).with_fanout(fanout);
        cfg.exec.ship_threshold = 1;
        cfg.farm.fabric.latency.rack_rtt_ns = 500_000;
        cfg.farm.fabric.latency.cross_rack_rtt_ns = 1_000_000;
        cfg.farm.fabric.latency.rpc_overhead_ns = 500_000;
        KnowledgeGraph::load(cfg, KnowledgeGraphSpec::tiny())
    };
    let serial = mk(1);
    let parallel = mk(0);
    let expected = all_answers(&serial);
    let got = all_answers(&parallel);
    assert_eq!(expected, got, "parallel coordinator changed query results");
    // The parallel run actually overlapped ships on the fan-out hops:
    // with wall-clock latency injection on, concurrent ships are sleeping
    // on the wire at the same time.
    parallel.cluster.farm().fabric().set_inject_latency(true);
    let out = parallel
        .cluster
        .inner()
        .coordinate_query(MachineId(0), TENANT, GRAPH, &parallel.q4())
        .unwrap();
    parallel.cluster.farm().fabric().set_inject_latency(false);
    let peak = out
        .per_hop
        .iter()
        .map(|h| h.max_concurrent_ships)
        .max()
        .unwrap();
    assert!(peak > 1, "expected overlapping ships, peak was {peak}");
    // And per-hop wall time was recorded.
    assert!(out.per_hop.iter().all(|h| h.wall_ns > 0));
}

#[test]
fn concurrent_clients_agree_with_serial_baseline() {
    let serial = load(1, 5);
    let parallel = load(0, 5);
    let expected = Arc::new(all_answers(&serial));

    let mut handles = Vec::new();
    for t in 0..6 {
        let kg_queries = [parallel.q1(), parallel.q2(), parallel.q3(), parallel.q4()];
        let client = parallel.client.clone();
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..10 {
                let which = (t + i) % 4;
                let out = client.query(TENANT, GRAPH, &kg_queries[which]).unwrap();
                let got = render(&out);
                assert_eq!(
                    expected[which].1, got,
                    "thread {t} iteration {i}: {} diverged",
                    expected[which].0
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn killed_machine_mid_stream_matches_serial_baseline() {
    let serial = load(1, 6);
    let parallel = load(0, 6);

    // The baseline is failure-invariant: killing a machine (with backup
    // promotion) must not change any answer. Verify that on the serial
    // cluster first.
    let expected = all_answers(&serial);
    serial.cluster.farm().kill_machine(MachineId(4));
    assert_eq!(
        expected,
        all_answers(&serial),
        "serial answers changed after machine kill"
    );

    // Parallel cluster: clients hammer queries while a machine dies
    // mid-stream. In-flight queries may fail transiently; every *successful*
    // query must return the baseline answer.
    let stop = Arc::new(AtomicBool::new(false));
    let successes = Arc::new(AtomicU64::new(0));
    let transient_errors = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..4 {
        let queries = [parallel.q1(), parallel.q4()];
        let client = parallel.client.clone();
        let expected = expected.clone();
        let stop = stop.clone();
        let successes = successes.clone();
        let transient_errors = transient_errors.clone();
        handles.push(std::thread::spawn(move || {
            let mut i = 0;
            while !stop.load(Ordering::Relaxed) {
                let which = (t + i) % 2;
                i += 1;
                match client.query(TENANT, GRAPH, &queries[which]) {
                    Ok(out) => {
                        let got = render(&out);
                        let want = &expected[if which == 0 { 0 } else { 3 }];
                        assert_eq!(want.1, got, "{} diverged during failure", want.0);
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        // A ship raced the kill; acceptable, never wrong.
                        transient_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    // Let the stream establish, then kill a machine under it.
    std::thread::sleep(std::time::Duration::from_millis(50));
    parallel.cluster.farm().kill_machine(MachineId(4));
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        successes.load(Ordering::Relaxed) > 0,
        "no query succeeded around the failure"
    );
    // After promotion settles, answers are the baseline again — from every
    // surviving backend.
    assert_eq!(expected, all_answers(&parallel));
}
