//! Concurrent distributed coordination: many simultaneous multi-hop queries
//! from multiple client threads under the parallel per-hop fan-out, with
//! every result cross-checked against the serial (`fanout_parallelism = 1`)
//! coordinator — including while a machine is killed mid-stream.

use a1::core::{A1Config, Json, MachineId};
use a1_bench::workload::{KnowledgeGraph, KnowledgeGraphSpec, GRAPH, TENANT};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn load(fanout: usize, machines: u32) -> KnowledgeGraph {
    KnowledgeGraph::load(
        A1Config::small(machines).with_fanout(fanout),
        KnowledgeGraphSpec::tiny(),
    )
}

/// Render a query outcome as a stable string: the count, or the rows in
/// coordinator merge order (which is deterministic by MachineId).
fn render(out: &a1::core::QueryOutcome) -> String {
    match out.count {
        Some(c) => format!("count:{c}"),
        None => out
            .rows
            .iter()
            .map(Json::to_string)
            .collect::<Vec<_>>()
            .join("|"),
    }
}

fn answer(kg: &KnowledgeGraph, text: &str) -> String {
    render(&kg.client.query(TENANT, GRAPH, text).unwrap())
}

fn all_answers(kg: &KnowledgeGraph) -> Vec<(String, String)> {
    [
        ("q1", kg.q1()),
        ("q2", kg.q2()),
        ("q3", kg.q3()),
        ("q4", kg.q4()),
    ]
    .into_iter()
    .map(|(name, text)| (name.to_string(), answer(kg, &text)))
    .collect()
}

#[test]
fn parallel_results_match_serial_baseline() {
    // ship_threshold = 1 so even the tiny graph's per-machine batches go
    // over the RPC ship path rather than inline one-sided reads. The
    // network model is scaled into the injector's sleep regime so the
    // overlap assertion below is deterministic on a single-core runner
    // (instant RPCs can finish before the next pool worker starts).
    let mk = |fanout: usize| {
        let mut cfg = A1Config::small(6).with_fanout(fanout);
        cfg.exec.ship_policy = a1::core::query::ShipPolicy::Fixed(1);
        cfg.farm.fabric.latency.rack_rtt_ns = 500_000;
        cfg.farm.fabric.latency.cross_rack_rtt_ns = 1_000_000;
        cfg.farm.fabric.latency.rpc_overhead_ns = 500_000;
        KnowledgeGraph::load(cfg, KnowledgeGraphSpec::tiny())
    };
    let serial = mk(1);
    let parallel = mk(0);
    let expected = all_answers(&serial);
    let got = all_answers(&parallel);
    assert_eq!(expected, got, "parallel coordinator changed query results");
    // The parallel run actually overlapped ships on the fan-out hops:
    // with wall-clock latency injection on, concurrent ships are sleeping
    // on the wire at the same time.
    parallel.cluster.farm().fabric().set_inject_latency(true);
    let out = parallel
        .cluster
        .inner()
        .coordinate_query(MachineId(0), TENANT, GRAPH, &parallel.q4())
        .unwrap();
    parallel.cluster.farm().fabric().set_inject_latency(false);
    let peak = out
        .per_hop
        .iter()
        .map(|h| h.max_concurrent_ships)
        .max()
        .unwrap();
    assert!(peak > 1, "expected overlapping ships, peak was {peak}");
    // And per-hop wall time was recorded.
    assert!(out.per_hop.iter().all(|h| h.wall_ns > 0));
}

#[test]
fn concurrent_clients_agree_with_serial_baseline() {
    let serial = load(1, 5);
    let parallel = load(0, 5);
    let expected = Arc::new(all_answers(&serial));

    let mut handles = Vec::new();
    for t in 0..6 {
        let kg_queries = [parallel.q1(), parallel.q2(), parallel.q3(), parallel.q4()];
        let client = parallel.client.clone();
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..10 {
                let which = (t + i) % 4;
                let out = client.query(TENANT, GRAPH, &kg_queries[which]).unwrap();
                let got = render(&out);
                assert_eq!(
                    expected[which].1, got,
                    "thread {t} iteration {i}: {} diverged",
                    expected[which].0
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn killed_machine_mid_stream_matches_serial_baseline() {
    let serial = load(1, 6);
    let parallel = load(0, 6);

    // The baseline is failure-invariant: killing a machine (with backup
    // promotion) must not change any answer. Verify that on the serial
    // cluster first.
    let expected = all_answers(&serial);
    serial.cluster.farm().kill_machine(MachineId(4));
    assert_eq!(
        expected,
        all_answers(&serial),
        "serial answers changed after machine kill"
    );

    // Parallel cluster: clients hammer queries while a machine dies
    // mid-stream. In-flight queries may fail transiently; every *successful*
    // query must return the baseline answer.
    let stop = Arc::new(AtomicBool::new(false));
    let successes = Arc::new(AtomicU64::new(0));
    let transient_errors = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..4 {
        let queries = [parallel.q1(), parallel.q4()];
        let client = parallel.client.clone();
        let expected = expected.clone();
        let stop = stop.clone();
        let successes = successes.clone();
        let transient_errors = transient_errors.clone();
        handles.push(std::thread::spawn(move || {
            let mut i = 0;
            while !stop.load(Ordering::Relaxed) {
                let which = (t + i) % 2;
                i += 1;
                match client.query(TENANT, GRAPH, &queries[which]) {
                    Ok(out) => {
                        let got = render(&out);
                        let want = &expected[if which == 0 { 0 } else { 3 }];
                        assert_eq!(want.1, got, "{} diverged during failure", want.0);
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        // A ship raced the kill; acceptable, never wrong.
                        transient_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    // Let the stream establish, then kill a machine under it.
    std::thread::sleep(std::time::Duration::from_millis(50));
    parallel.cluster.farm().kill_machine(MachineId(4));
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        successes.load(Ordering::Relaxed) > 0,
        "no query succeeded around the failure"
    );
    // After promotion settles, answers are the baseline again — from every
    // surviving backend.
    assert_eq!(expected, all_answers(&parallel));
}

// ---------------------------------------------------------------- morsels
//
// Intra-machine morsel execution: one machine's work-op batch splits onto
// its own worker pool (`ExecConfig::intra_parallelism`), the level below
// the cross-machine fan-out exercised above.

use a1::core::query::exec::{self, CompiledStep, WorkOp};
use a1::core::query::plan::Select;
use a1::core::Mutation;
use a1::farm::{Addr, RegionId};
use a1_bench::morsel::{build_graph, match_query, MorselGraphSpec};

fn skewed_spec(srcs: usize) -> MorselGraphSpec {
    MorselGraphSpec {
        srcs,
        skew: 0.9,
        payload_bytes: 16,
    }
}

/// A 4-machine × 4-core cluster whose hop-2 frontier is ~90% owned by
/// machine 0 (the hub-skew shape the morsel split exists for).
fn skewed_cluster(intra: usize, srcs: usize) -> a1::core::A1Cluster {
    let mut cfg = A1Config::small(4).with_intra_parallelism(intra);
    cfg.farm.fabric.threads_per_machine = 4;
    // Network waits land in the injector's sleep regime (like the fan-out
    // test above) so morsel-overlap assertions hold on a 1-core runner.
    cfg.farm.fabric.latency.rack_rtt_ns = 500_000;
    cfg.farm.fabric.latency.cross_rack_rtt_ns = 1_000_000;
    cfg.farm.fabric.latency.rpc_overhead_ns = 500_000;
    build_graph(cfg, &skewed_spec(srcs), true)
}

#[test]
fn morsel_parallel_matches_serial_on_hub_skewed_frontier() {
    use a1_bench::morsel::{GRAPH as MGRAPH, TENANT as MTENANT};
    let srcs = 24;
    let serial = skewed_cluster(1, srcs);
    let expected = serial
        .client()
        .query(MTENANT, MGRAPH, &match_query())
        .unwrap()
        .count
        .unwrap();
    assert_eq!(expected, srcs as u64, "every src's target matches");
    // Auto (per-core) and capped morsel configs answer identically.
    for intra in [0usize, 3] {
        let parallel = skewed_cluster(intra, srcs);
        let got = parallel
            .client()
            .query(MTENANT, MGRAPH, &match_query())
            .unwrap()
            .count
            .unwrap();
        assert_eq!(expected, got, "intra={intra} changed the answer");
    }
    // With injected latency the auto cluster genuinely overlaps morsels
    // inside the hub machine's single shipped work op.
    let parallel = skewed_cluster(0, srcs);
    parallel.cluster_inject(true);
    let out = parallel
        .inner()
        .coordinate_query(MachineId(1), MTENANT, MGRAPH, &match_query())
        .unwrap();
    parallel.cluster_inject(false);
    assert_eq!(out.count.unwrap(), expected);
    let hop = out
        .per_hop
        .iter()
        .max_by_key(|h| h.frontier)
        .expect("hops recorded");
    // ~90% of the frontier mapped to one machine, yet morsels overlapped.
    assert!(hop.frontier >= srcs as u64);
    assert!(
        hop.max_concurrent_morsels > 1,
        "expected overlapping morsels, peak was {}",
        hop.max_concurrent_morsels
    );
    assert!(hop.morsels > hop.machines, "hub batch split into morsels");
}

/// Helper: toggle latency injection (keeps the test bodies readable).
trait Inject {
    fn cluster_inject(&self, on: bool);
}
impl Inject for a1::core::A1Cluster {
    fn cluster_inject(&self, on: bool) {
        self.farm().fabric().set_inject_latency(on);
    }
}

#[test]
fn error_in_morsel_propagates_without_deadlock() {
    let cluster = skewed_cluster(0, 16);
    let inner = cluster.inner();
    let machine = MachineId(0);
    let proxies = inner
        .proxies_at(machine, a1_bench::morsel::TENANT, a1_bench::morsel::GRAPH)
        .unwrap();
    let snapshot_ts = inner.farm.begin_read_only(machine).read_ts();
    // A batch of addresses in a region that does not exist: every morsel's
    // header read fails with `Unavailable` — which, unlike the tolerated
    // NoSuchVertex, must propagate out of the morsel join.
    let op = WorkOp {
        tenant: a1_bench::morsel::TENANT.into(),
        graph: a1_bench::morsel::GRAPH.into(),
        snapshot_ts,
        vertices: (0..32)
            .map(|i| Addr::new(RegionId(40_000 + i), 64))
            .collect(),
        step: CompiledStep {
            type_filter: None,
            id_filter: None,
            preds: vec![],
            matches: vec![],
            traverse: None,
        },
        emit_rows: false,
        select: Select::Count,
        cache_bypass: false,
    };
    let pool = inner.farm.fabric().machine(machine).unwrap().pool();
    let exec_cfg = a1::core::query::exec::ExecConfig {
        intra_parallelism: 4,
        ..Default::default()
    };
    let err = exec::run_work_op(
        &inner.farm,
        &inner.store,
        &proxies,
        machine,
        &op,
        None,
        Some(pool),
        &exec_cfg,
    );
    assert!(err.is_err(), "unplaced addresses must surface an error");
    // The pool joined every morsel before surfacing the error: the machine
    // still executes queries (no wedged workers, no deadlock).
    let out = cluster
        .client()
        .query(
            a1_bench::morsel::TENANT,
            a1_bench::morsel::GRAPH,
            &match_query(),
        )
        .unwrap();
    assert_eq!(out.count.unwrap(), 16);
}

#[test]
fn panic_in_morsel_job_propagates_and_pool_serves_queries() {
    use a1::farm::ScopedJob;
    let cluster = skewed_cluster(0, 16);
    let pool = cluster
        .farm()
        .fabric()
        .machine(MachineId(0))
        .unwrap()
        .pool();
    // A morsel-shaped scoped batch where one job panics: the panic must
    // resurface on the caller only after every sibling joined, and the
    // machine's pool — shared with real query execution — must survive.
    let jobs: Vec<ScopedJob<u64>> = (0..8)
        .map(|i| {
            Box::new(move || {
                if i == 5 {
                    panic!("morsel {i} failed");
                }
                i as u64
            }) as ScopedJob<u64>
        })
        .collect();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run_all(jobs)));
    assert!(caught.is_err(), "panic must propagate to the dispatcher");
    let out = cluster
        .client()
        .query(
            a1_bench::morsel::TENANT,
            a1_bench::morsel::GRAPH,
            &match_query(),
        )
        .unwrap();
    assert_eq!(out.count.unwrap(), 16, "pool still serves queries");
}

#[test]
fn morsel_snapshot_stable_under_concurrent_ingest() {
    use a1_bench::morsel::{GRAPH as MGRAPH, TENANT as MTENANT};
    let srcs = 16usize;
    let cluster = skewed_cluster(0, srcs);
    let expected = srcs as u64;

    // Ingest writers churn the *queried* vertices: every round rewrites the
    // match targets (same rank, new payload — the answer is invariant) and
    // inserts unrelated vertices, so morsel snapshot reads race live
    // version-chain updates on the very objects they evaluate.
    let stop = Arc::new(AtomicBool::new(false));
    let writes = Arc::new(AtomicU64::new(0));
    let mut writers = Vec::new();
    for w in 0..2u64 {
        let client = cluster.client();
        let stop = stop.clone();
        let writes = writes.clone();
        writers.push(std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                round += 1;
                for i in (w as usize..srcs).step_by(2) {
                    let muts = vec![
                        Mutation::UpsertVertex {
                            tenant: MTENANT.into(),
                            graph: MGRAPH.into(),
                            ty: "entity".into(),
                            attrs: a1::core::Json::obj(vec![
                                ("id", a1::core::Json::Str(format!("tgt{i:05}"))),
                                ("rank", a1::core::Json::Num(1.0)),
                                ("payload", a1::core::Json::Str(format!("w{w}r{round}"))),
                            ]),
                        },
                        Mutation::UpsertVertex {
                            tenant: MTENANT.into(),
                            graph: MGRAPH.into(),
                            ty: "entity".into(),
                            attrs: a1::core::Json::obj(vec![(
                                "id",
                                a1::core::Json::Str(format!("noise.w{w}.{round}.{i}")),
                            )]),
                        },
                    ];
                    if client.apply_batch(&muts).is_ok() {
                        writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }

    // Readers: every morsel-parallel query must see a consistent snapshot —
    // the count never wavers while targets are rewritten under it.
    let mut readers = Vec::new();
    for _ in 0..4 {
        let client = cluster.client();
        readers.push(std::thread::spawn(move || {
            for _ in 0..12 {
                let out = client.query(MTENANT, MGRAPH, &match_query()).unwrap();
                assert_eq!(
                    out.count.unwrap(),
                    expected,
                    "snapshot read saw a torn frontier"
                );
            }
        }));
    }
    for r in readers {
        r.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    assert!(
        writes.load(Ordering::Relaxed) > 0,
        "writers never committed — the race was not exercised"
    );
    // Quiesced: the answer is still the baseline.
    let out = cluster
        .client()
        .query(MTENANT, MGRAPH, &match_query())
        .unwrap();
    assert_eq!(out.count.unwrap(), expected);
}
