//! A1: a distributed in-memory graph database (umbrella crate).
pub use a1_core as core;
pub use a1_farm as farm;
pub use a1_rdma as rdma;
