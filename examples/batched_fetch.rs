//! Doorbell-batched one-sided reads, A/B'd against the scalar read loop.
//!
//! Builds the same hub-skewed graph on two clusters — identical configs
//! except `ExecConfig::batched_fetch` — with shipping disabled so the
//! coordinator evaluates every remote hub inline with one-sided reads.
//! Scalar, that is a header RTT plus a record RTT per hub, serially;
//! batched, the morsel's headers post as one doorbell and its records as
//! a second, so two round trips replace 2N. With RTT-dominated latency
//! injection on, the collapse is visible directly in wall-clock time, and
//! the fabric's `doorbells` / `reads_batched` counters plus the query's
//! `fetch_verbs` metric show exactly where the round trips went.
//!
//! ```sh
//! cargo run --release --example batched_fetch
//! ```

use a1_bench::cache::{build_graph, count_query, rows_query, GRAPH, TENANT};
use a1_bench::fetch::{fetch_spec, suite_config};
use a1_core::MachineId;
use std::time::Instant;

fn main() {
    let spec = fetch_spec(true);
    println!(
        "loading two clusters ({} hubs x {} B payloads on machine 0)...",
        spec.hubs, spec.payload_bytes
    );
    let scalar_cl = build_graph(suite_config(false), &spec);
    let batched_cl = build_graph(suite_config(true), &spec);
    let q = count_query();

    let mut walls = Vec::new();
    for (label, cluster) in [("scalar", &scalar_cl), ("batched", &batched_cl)] {
        let inner = cluster.inner();
        // Machine 1 coordinates; the hubs live on machine 0, so every hub
        // evaluation crosses the fabric.
        let coord = |q: &str| {
            inner
                .coordinate_query(MachineId(1), TENANT, GRAPH, q)
                .expect("query")
        };
        // Warm proxies and pools with injection off, then measure.
        coord(&q);
        let before = cluster.farm().fabric().metrics().snapshot();
        cluster.farm().fabric().set_inject_latency(true);
        let t0 = Instant::now();
        let out = coord(&q);
        let elapsed = t0.elapsed();
        cluster.farm().fabric().set_inject_latency(false);
        let d = cluster
            .farm()
            .fabric()
            .metrics()
            .snapshot()
            .delta_since(&before);
        println!(
            "  {label:<8} count={} wall={:.2} ms  fetch_verbs={}  (fabric: {} doorbells carrying {} batched reads)",
            out.count.unwrap(),
            elapsed.as_secs_f64() * 1e3,
            out.metrics.fetch_verbs,
            d.doorbells,
            d.reads_batched,
        );
        walls.push((elapsed, out.metrics.fetch_verbs));
    }
    println!(
        "fetch-path speedup (scalar / batched): {:.2}x  verb reduction: {:.1}x",
        walls[0].0.as_secs_f64() / walls[1].0.as_secs_f64(),
        walls[0].1 as f64 / walls[1].1.max(1) as f64,
    );

    // Same rows either way: the batched prefetch falls back to scalar
    // reads for any slot it cannot serve, so answers never depend on it.
    let render = |out: &a1_core::QueryOutcome| {
        let mut rows: Vec<String> = out.rows.iter().map(|r| r.to_string()).collect();
        rows.sort();
        rows.join("|")
    };
    let rq = rows_query();
    let s = scalar_cl
        .inner()
        .coordinate_query(MachineId(1), TENANT, GRAPH, &rq)
        .expect("query");
    let b = batched_cl
        .inner()
        .coordinate_query(MachineId(1), TENANT, GRAPH, &rq)
        .expect("query");
    assert_eq!(render(&s), render(&b), "scalar and batched rows diverged");
    println!("scalar and batched rows byte-identical.");
}
