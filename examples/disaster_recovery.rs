//! Disaster recovery walkthrough (paper §4): replicate updates through the
//! FaRM-resident replication log into ObjectStore, lose the cluster, and
//! rebuild it with both recovery flavors — including the paper's partial-
//! replication example.
//!
//! ```sh
//! cargo run --release --example disaster_recovery
//! ```

use a1::core::{A1Cluster, A1Config, Json, MachineId};
use a1_objectstore::{ObjectStore, StoreConfig};
use a1_recovery::{recover_best_effort, recover_consistent, Replicator};

const T: &str = "bing";
const G: &str = "kg";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A cluster with the replication log enabled.
    let cluster = A1Cluster::start(A1Config {
        dr_enabled: true,
        ..A1Config::small(3)
    })?;
    let client = cluster.client();
    client.create_tenant(T)?;
    client.create_graph(T, G)?;
    client.create_vertex_type(
        T,
        G,
        r#"{"name": "entity", "fields": [
            {"id": 0, "name": "id", "type": "string", "required": true}]}"#,
        "id",
        &[],
    )?;
    client.create_edge_type(T, G, r#"{"name": "likes", "fields": []}"#)?;

    let store = ObjectStore::new(StoreConfig::default());
    let repl = Replicator::new(cluster.clone(), store)?;
    repl.replicate_catalog()?;

    // Committed, fully replicated data.
    client.create_vertex(T, G, "entity", r#"{"id": "alice"}"#)?;
    client.create_vertex(T, G, "entity", r#"{"id": "bob"}"#)?;
    client.create_edge(
        T,
        G,
        "entity",
        &Json::str("alice"),
        "likes",
        "entity",
        &Json::str("bob"),
        None,
    )?;
    let flushed = repl.sweep_all()?;
    println!("replicated {flushed} log entries to ObjectStore");

    // One more transaction: A, B, and an edge — only partially replicated
    // before the disaster (the paper's §4 example).
    let mut txn = client.transaction();
    txn.create_vertex(T, G, "entity", &Json::parse(r#"{"id": "A"}"#)?)?;
    txn.create_vertex(T, G, "entity", &Json::parse(r#"{"id": "B"}"#)?)?;
    txn.create_edge(
        T,
        G,
        "entity",
        &Json::str("A"),
        "likes",
        "entity",
        &Json::str("B"),
        None,
    )?;
    txn.commit_with_retry()?;
    let inner = cluster.inner();
    let pending = inner
        .replog
        .as_ref()
        .unwrap()
        .fetch_pending(&inner.farm, MachineId(0), 10)?;
    repl.apply_entry(&pending[0])?; // A reaches ObjectStore
    repl.apply_entry(&pending[1])?; // B reaches ObjectStore
    println!("disaster strikes with the A→B edge still unreplicated!");
    let t_r = repl.update_watermark()?;
    println!("durable consistency watermark tR = {t_r}");

    // Consistent recovery: the newest transactionally consistent snapshot.
    let (consistent, report) = recover_consistent(repl.store(), A1Config::small(3), T, G)?;
    println!(
        "\nconsistent recovery: {} vertices, {} edges (snapshot ts {:?})",
        report.vertices, report.edges, report.snapshot_ts
    );
    let cc = consistent.client();
    println!(
        "  alice: {:?}, A: {:?}  ← the partial transaction is gone entirely",
        cc.get_vertex(T, G, "entity", &Json::str("alice"))?
            .is_some(),
        cc.get_vertex(T, G, "entity", &Json::str("A"))?.is_some(),
    );

    // Best-effort recovery: keep everything durable, drop dangling edges.
    let (best, report) = recover_best_effort(repl.store(), A1Config::small(3), T, G)?;
    println!(
        "\nbest-effort recovery: {} vertices, {} edges, {} dangling dropped",
        report.vertices, report.edges, report.dangling_edges_dropped
    );
    let bc = best.client();
    println!(
        "  A: {:?}, B: {:?}  ← more data than consistent recovery, no dangling edges",
        bc.get_vertex(T, G, "entity", &Json::str("A"))?.is_some(),
        bc.get_vertex(T, G, "entity", &Json::str("B"))?.is_some(),
    );
    let out = bc.query(
        T,
        G,
        r#"{"id": "A", "_out_edge": {"_type": "likes", "_vertex": {"_select": ["_count(*)"]}}}"#,
    )?;
    println!("  edges from A: {}", out.count.unwrap());
    Ok(())
}
