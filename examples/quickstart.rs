//! Quickstart: boot an A1 cluster, define a schema, load a tiny film graph,
//! and run A1QL queries (paper Fig. 5 + Fig. 8).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use a1::core::{A1Cluster, A1Config, Json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-machine simulated cluster (3 fault domains, 3-way replication).
    let cluster = A1Cluster::start(A1Config::small(4))?;
    let client = cluster.client();

    // Tenants isolate customers; graphs hold types (paper §3, Table 1).
    client.create_tenant("demo")?;
    client.create_graph("demo", "films")?;

    // Strongly-typed vertices (paper Fig. 5: Actor and Film).
    client.create_vertex_type(
        "demo",
        "films",
        r#"{"name": "Actor", "fields": [
            {"id": 0, "name": "name",       "type": "string", "required": true},
            {"id": 1, "name": "origin",     "type": "string"},
            {"id": 2, "name": "birth_date", "type": "date"}]}"#,
        "name",
        &[],
    )?;
    client.create_vertex_type(
        "demo",
        "films",
        r#"{"name": "Film", "fields": [
            {"id": 0, "name": "name",         "type": "string", "required": true},
            {"id": 1, "name": "genre",        "type": "string"},
            {"id": 2, "name": "release_date", "type": "date"}]}"#,
        "name",
        &["genre"],
    )?;
    // The edge type carries the character played (paper §3).
    client.create_edge_type(
        "demo",
        "films",
        r#"{"name": "Acted", "fields": [
            {"id": 0, "name": "character", "type": "string"}]}"#,
    )?;

    // Data plane: create vertices and edges.
    client.create_vertex(
        "demo",
        "films",
        "Actor",
        r#"{"name": "Tom Hanks", "origin": "USA", "birth_date": -4930}"#,
    )?;
    client.create_vertex(
        "demo",
        "films",
        "Film",
        r#"{"name": "Saving Private Ryan", "genre": "war", "release_date": 10430}"#,
    )?;
    client.create_vertex(
        "demo",
        "films",
        "Film",
        r#"{"name": "The Terminal", "genre": "comedy", "release_date": 12585}"#,
    )?;
    for film in ["Saving Private Ryan", "The Terminal"] {
        client.create_edge(
            "demo",
            "films",
            "Film",
            &Json::str(film),
            "Acted",
            "Actor",
            &Json::str("Tom Hanks"),
            Some(r#"{"character": "lead"}"#),
        )?;
    }

    // Transactions group data-plane operations atomically (paper §3).
    let mut txn = client.transaction();
    txn.create_vertex(
        "demo",
        "films",
        "Actor",
        &Json::parse(r#"{"name": "Meg Ryan", "origin": "USA"}"#)?,
    )?;
    txn.create_edge(
        "demo",
        "films",
        "Film",
        &Json::str("The Terminal"),
        "Acted",
        "Actor",
        &Json::str("Meg Ryan"),
        None,
    )?;
    txn.commit_with_retry()?;

    // A1QL: which actors appear in each film (2-hop JSON traversal, Fig. 8)?
    let out = client.query(
        "demo",
        "films",
        r#"{ "id": "The Terminal",
             "_out_edge": { "_type": "Acted",
             "_vertex": { "_select": ["*"] }}}"#,
    )?;
    println!("Actors in The Terminal:");
    for row in &out.rows {
        println!(
            "  - {}",
            row.get("name").and_then(Json::as_str).unwrap_or("?")
        );
    }
    assert_eq!(out.rows.len(), 2);

    // Count with dedup across films.
    let out = client.query(
        "demo",
        "films",
        r#"{ "id": "Tom Hanks",
             "_in_edge": { "_type": "Acted",
             "_vertex": { "_select": ["_count(*)"] }}}"#,
    )?;
    println!("Films with Tom Hanks: {}", out.count.unwrap());
    println!(
        "query read {} objects, {:.0}% local, snapshot ts {}",
        out.metrics.objects_read(),
        out.metrics.local_read_fraction() * 100.0,
        out.metrics.snapshot_ts
    );
    Ok(())
}
