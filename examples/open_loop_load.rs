//! Open-loop serving walkthrough: fire Poisson arrivals at the front door,
//! watch admission control shed past saturation, and see the byte-identity
//! guarantee — answers under concurrent load match closed-loop execution.
//!
//! ```sh
//! cargo run --release --example open_loop_load
//! ```

use a1::core::{A1Config, A1Error, AdmissionConfig, MachineId};
use a1_bench::workload::{KnowledgeGraph, KnowledgeGraphSpec, GRAPH, TENANT};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn main() {
    // A cluster with a deliberately tight front door: one query in flight
    // per machine, at most 2 per client.
    let mut cfg = A1Config::small(4).with_admission(AdmissionConfig {
        max_inflight_queries: 1,
        max_inflight_per_client: 2,
        ..AdmissionConfig::default()
    });
    // Datacenter-ish RTTs, injected as wall-clock sleeps once the storm
    // starts, so each query takes real milliseconds and requests overlap.
    cfg.farm.fabric.latency.rack_rtt_ns = 1_000_000;
    cfg.farm.fabric.latency.cross_rack_rtt_ns = 2_000_000;
    cfg.farm.fabric.latency.rpc_overhead_ns = 1_000_000;
    let kg = KnowledgeGraph::load(cfg, KnowledgeGraphSpec::tiny());
    let q1 = kg.q1();

    // The closed-loop baseline: the answer every request under load must
    // reproduce exactly.
    let baseline = kg.client.query(TENANT, GRAPH, &q1).unwrap().count.unwrap();
    println!("closed-loop Q1 answer: {baseline} collaborators");

    // Wall-clock network latency on, so requests genuinely overlap and the
    // 2 ms cadence outruns what one-in-flight machines can absorb.
    kg.cluster.farm().fabric().set_inject_latency(true);

    // Open loop: 200 requests due at a fixed 2 ms cadence, regardless of
    // how the cluster is doing. Eight workers, each an identified client.
    let n = 200;
    let started = Instant::now();
    let next = AtomicUsize::new(0);
    let (mut ok, mut shed, mut divergent) = (0, 0, 0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|w| {
                let client = kg.cluster.client().with_client_id(&format!("client{w}"));
                let (next, q1) = (&next, &q1);
                scope.spawn(move || {
                    let (mut ok, mut shed, mut divergent) = (0, 0, 0);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break (ok, shed, divergent);
                        }
                        let due = started + Duration::from_millis(2) * i as u32;
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        match client.query(TENANT, GRAPH, q1) {
                            Ok(out) => {
                                ok += 1;
                                if out.count != Some(baseline) {
                                    divergent += 1;
                                }
                            }
                            // Past the limit the front door sheds with a
                            // structured retry-after hint instead of
                            // queueing without bound.
                            Err(A1Error::Overloaded { retry_after_ms }) => {
                                shed += 1;
                                std::thread::sleep(Duration::from_millis(retry_after_ms));
                            }
                            Err(e) => panic!("unexpected error under load: {e}"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            let (o, s, d) = h.join().unwrap();
            ok += o;
            shed += s;
            divergent += d;
        }
    });
    println!("completed {ok}, shed {shed} (Overloaded, retried later), divergent {divergent}");
    assert_eq!(divergent, 0, "answers under load must match closed-loop");

    // The test hook used by tests/serving.rs: saturate machine 0 by hand
    // and watch the front door reject, then recover.
    let slot = kg.cluster.hold_admission_slot(MachineId(0), "hog").unwrap();
    match kg.cluster.hold_admission_slot(MachineId(0), "late") {
        Err(err) => println!("machine 0 saturated: {err}"),
        Ok(_) => panic!("front door admitted past its limit"),
    }
    drop(slot);
    kg.cluster
        .hold_admission_slot(MachineId(0), "late")
        .unwrap();
    println!("load drained: admission recovered");
}
