//! Wire protocol v1: binary frames vs the legacy JSON text wire (§3.1).
//!
//! Shows three things:
//!
//! 1. the frame itself — the same work op encoded both ways, with sizes;
//! 2. bytes-on-wire for a real traversal on two 8-machine clusters, one on
//!    the default binary wire and one forced to `WireFormat::Json`;
//! 3. the compat rule — a JSON-era payload decodes through the same entry
//!    point as a binary frame (first-byte auto-detection).
//!
//! ```sh
//! cargo run --release --example wire_format
//! ```

use a1_bench::workload::{KnowledgeGraph, KnowledgeGraphSpec, GRAPH, TENANT};
use a1_core::query::exec::{CompiledStep, WorkOp};
use a1_core::query::plan::{AttrPredicate, CmpOp, Select};
use a1_core::{wire, A1Config, Json, WireFormat};
use a1_farm::{Addr, RegionId};

fn main() {
    // ---- 1. One message, two encodings -------------------------------
    let op = WorkOp {
        tenant: TENANT.into(),
        graph: GRAPH.into(),
        snapshot_ts: 42,
        vertices: (0..16)
            .map(|i| Addr::new(RegionId(i % 8), 64 * (i + 1)))
            .collect(),
        step: CompiledStep {
            type_filter: None,
            id_filter: None,
            preds: vec![AttrPredicate {
                attr: "str_str_map".into(),
                map_key: Some("character".into()),
                op: CmpOp::Eq,
                value: Json::str("Batman"),
            }],
            matches: vec![],
            traverse: None,
        },
        emit_rows: true,
        select: Select::All,
        cache_bypass: false,
    };
    let binary = wire::encode_work_op(&op, WireFormat::Binary);
    let json = wire::encode_work_op(&op, WireFormat::Json);
    println!("one 16-vertex work op:");
    println!(
        "  json text     {:>4} bytes: {}…",
        json.len(),
        String::from_utf8_lossy(&json[..60.min(json.len())])
    );
    println!(
        "  binary frame  {:>4} bytes: magic={:#04x} version={} tag={:#04x} + compact body",
        binary.len(),
        binary[0],
        binary[1],
        binary[2]
    );
    // Both decode to the same value through the same entry point (the first
    // byte tells them apart — no JSON document can start with 0xA1).
    let a = wire::decode_request(&binary).unwrap();
    let b = wire::decode_request(&json).unwrap();
    assert_eq!(a, b);
    println!("  auto-detected decode: identical ✓\n");

    // ---- 2. Bytes on the wire for a real traversal -------------------
    let spec = KnowledgeGraphSpec {
        hub_films: 24,
        actors_per_film: 8,
        actor_pool: 96,
        films_per_actor: 2,
        character_films: 4,
        payload_bytes: 64,
        seed: 0xA1,
    };
    let mut answers = Vec::new();
    for fmt in [WireFormat::Json, WireFormat::Binary] {
        let kg = KnowledgeGraph::load(A1Config::small(8).with_wire_format(fmt), spec.clone());
        let q = kg.q4();
        let _ = kg.client.query(TENANT, GRAPH, &q).unwrap(); // warm caches
        let fabric = kg.cluster.farm().fabric().clone();
        let before = fabric.metrics().snapshot();
        let out = kg.client.query(TENANT, GRAPH, &q).unwrap();
        let delta = fabric.metrics().snapshot().delta_since(&before);
        println!(
            "Q4 over {:?} wire: {} rpcs, {} request B + {} reply B = {} total B (ship bytes per QueryMetrics: {}+{})",
            fmt,
            delta.rpcs,
            delta.rpc_req_bytes,
            delta.rpc_reply_bytes,
            delta.rpc_bytes(),
            out.metrics.rpc_req_bytes,
            out.metrics.rpc_reply_bytes,
        );
        answers.push((
            delta.rpc_bytes(),
            out.count.unwrap_or(out.rows.len() as u64),
        ));
    }
    let (json_bytes, json_answer) = answers[0];
    let (bin_bytes, bin_answer) = answers[1];
    assert_eq!(json_answer, bin_answer, "same answer on both wires");
    println!(
        "binary wire saves {:.1}% of RPC bytes (identical answer: {bin_answer}) — and Fabric::rpc\ncharges simulated latency per byte, so the saving is wall-clock speed, not just bandwidth.\n",
        100.0 * (1.0 - bin_bytes as f64 / json_bytes as f64)
    );

    // ---- 3. Compat: JSON-era mutation bodies still decode ------------
    // This is what a replication-log entry written by a pre-binary build
    // looks like, and how today's reader replays it.
    let legacy = br#"{"op":"put_vertex","tenant":"bing","graph":"kg","type":"entity","key":"e1","data":{"id":"e1"}}"#;
    let body = wire::decode_mutation_body(legacy).unwrap();
    let modern = wire::mutation_body_to_binary(&body);
    assert_eq!(wire::decode_mutation_body(&modern).unwrap(), body);
    println!(
        "legacy JSON replog entry ({} B) and its binary re-encoding ({} B) decode identically ✓",
        legacy.len(),
        modern.len()
    );
    println!("force the text wire cluster-wide with A1Config::with_wire_format(WireFormat::Json)");
}
