//! The Bing knowledge-graph scenario (paper §5–6): load a film/entertainment
//! knowledge graph with the weakly-typed `entity` model and run the four
//! evaluation queries of Table 2, printing their measured footprints.
//!
//! ```sh
//! cargo run --release --example knowledge_graph
//! ```

use a1_bench::workload::{KnowledgeGraph, KnowledgeGraphSpec, GRAPH, TENANT};
use a1_core::A1Config;

fn main() {
    println!("loading synthetic knowledge graph (hub director: 49 films)...");
    let kg = KnowledgeGraph::load(A1Config::small(8), KnowledgeGraphSpec::default());

    let queries = [
        ("Q1  actors who worked with the hub director", kg.q1()),
        ("Q2  actors who have played Batman", kg.q2()),
        ("Q3  war films with the hub actor (star match)", kg.q3()),
        ("Q4  films of the hub actor's co-stars (stress)", kg.q4()),
    ];
    for (label, text) in queries {
        let out = kg.client.query(TENANT, GRAPH, &text).expect("query");
        let result = out
            .count
            .map(|c| format!("count={c}"))
            .unwrap_or_else(|| format!("{} rows", out.rows.len()));
        println!("\n{label}\n  result: {result}");
        println!(
            "  vertices read: {}, edges visited: {}, objects: {} ({:.1}% local), rpcs: {}",
            out.metrics.vertices_read,
            out.metrics.edges_visited,
            out.metrics.objects_read(),
            out.metrics.local_read_fraction() * 100.0,
            out.metrics.rpcs
        );
    }
    println!("\n(paper Q1: 49 + 1639 vertices, 1785 edges, 3443 objects, ≥95% local)");
}
