//! Serial vs morsel-parallel work-op execution on a hub-skewed frontier.
//!
//! Builds the same graph into two 8-machine clusters where one machine owns
//! ~90% of the hop-2 frontier — the shape where cross-machine fan-out
//! collapses to a single shipped work op. One cluster runs the legacy
//! serial per-machine loop (`intra_parallelism = 1`), the other splits the
//! batch into morsels on the machine's own worker pool (`0` = auto, one
//! morsel per simulated core). Latency injection makes the overlap visible
//! in wall-clock time.
//!
//! ```sh
//! cargo run --release --example morsel_parallel
//! ```

use a1_bench::morsel::{build_graph, match_query, suite_config, MorselGraphSpec, GRAPH, TENANT};
use a1_core::MachineId;
use std::time::Instant;

fn main() {
    let spec = MorselGraphSpec::quick();
    let mut results = Vec::new();
    for (label, intra) in [("serial", 1usize), ("morsel", 0)] {
        println!("loading {label} cluster (intra_parallelism = {intra})...");
        let cluster = build_graph(suite_config(0, intra), &spec, true);
        cluster.farm().fabric().set_inject_latency(true);

        let inner = cluster.inner();
        let text = match_query();
        // Coordinate from machine 1 so the hub machine's batch ships over
        // RPC and morsel-splits at the data's home machine.
        let run = || {
            inner
                .coordinate_query(MachineId(1), TENANT, GRAPH, &text)
                .expect("query")
        };
        run(); // warm the proxy caches
        let t0 = Instant::now();
        let out = run();
        let elapsed = t0.elapsed();

        println!("  match-count result: {}", out.count.unwrap());
        for (i, hop) in out.per_hop.iter().enumerate() {
            println!(
                "  hop {i}: frontier={} machines={} morsels={} peak-concurrent-morsels={} wall={:.2} ms",
                hop.frontier,
                hop.machines,
                hop.morsels,
                hop.max_concurrent_morsels,
                hop.wall_ns as f64 / 1e6,
            );
        }
        println!(
            "  {label} wall-clock: {:.2} ms",
            elapsed.as_secs_f64() * 1e3
        );
        results.push((label, out.count.unwrap(), elapsed));
        cluster.farm().fabric().set_inject_latency(false);
    }
    let (_, serial_count, serial_t) = results[0];
    let (_, morsel_count, morsel_t) = results[1];
    assert_eq!(serial_count, morsel_count, "modes must agree");
    println!(
        "\nhub-skewed speedup (serial / morsel): {:.2}x",
        serial_t.as_secs_f64() / morsel_t.as_secs_f64()
    );
}
