//! Serial vs parallel per-hop fan-out (paper §3.4, Fig. 9).
//!
//! Loads the same knowledge graph into two 8-machine clusters — one with the
//! legacy serial coordinator (`fanout_parallelism = 1`), one with the
//! default parallel fan-out — turns on wall-clock latency injection, and
//! races the Q4 stress traversal on both.
//!
//! ```sh
//! cargo run --release --example parallel_fanout
//! ```

use a1_bench::workload::{KnowledgeGraph, KnowledgeGraphSpec, GRAPH, TENANT};
use a1_core::{A1Config, MachineId};
use std::time::Instant;

fn main() {
    let mut results = Vec::new();
    for (label, fanout) in [("serial", 1usize), ("parallel", 0)] {
        println!("loading {label} cluster (fanout_parallelism = {fanout})...");
        let mut cfg = A1Config::small(8).with_fanout(fanout);
        // Scale the network model up so injected waits sleep (overlappable)
        // rather than spin.
        cfg.farm.fabric.latency.rack_rtt_ns = 1_000_000;
        cfg.farm.fabric.latency.cross_rack_rtt_ns = 2_000_000;
        cfg.farm.fabric.latency.rpc_overhead_ns = 1_000_000;
        let kg = KnowledgeGraph::load(cfg, KnowledgeGraphSpec::default());
        kg.cluster.farm().fabric().set_inject_latency(true);

        let inner = kg.cluster.inner();
        let run = || {
            inner
                .coordinate_query(MachineId(0), TENANT, GRAPH, &kg.q4())
                .expect("query")
        };
        run(); // warm the proxy caches
        let t0 = Instant::now();
        let out = run();
        let elapsed = t0.elapsed();

        println!("  Q4 result: count={}", out.count.unwrap());
        for (i, hop) in out.per_hop.iter().enumerate() {
            println!(
                "  hop {i}: frontier={} machines={} rpcs={} peak-concurrent-ships={} wall={:.2} ms",
                hop.frontier,
                hop.machines,
                hop.rpcs,
                hop.max_concurrent_ships,
                hop.wall_ns as f64 / 1e6,
            );
        }
        println!("  total: {:.2} ms\n", elapsed.as_secs_f64() * 1e3);
        results.push((label, out.count.unwrap(), elapsed));
    }

    let (_, serial_count, serial_t) = results[0];
    let (_, parallel_count, parallel_t) = results[1];
    assert_eq!(serial_count, parallel_count, "modes must agree");
    println!(
        "parallel fan-out speedup: {:.2}x (identical result: {serial_count})",
        serial_t.as_secs_f64() / parallel_t.as_secs_f64()
    );
}
