//! Fault tolerance walkthrough (paper §2.1, §5.3): machine failure with
//! backup promotion, and PyCo fast restart after a process crash.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use a1::core::{A1Cluster, A1Config, Json, MachineId};
use a1::farm::{FarmCluster, FarmConfig, Hint};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Machine failure: promotion + re-replication -------------------
    let cluster = A1Cluster::start(A1Config::small(6))?;
    let client = cluster.client();
    client.create_tenant("t")?;
    client.create_graph("t", "g")?;
    client.create_vertex_type(
        "t",
        "g",
        r#"{"name": "node", "fields": [
            {"id": 0, "name": "id", "type": "string", "required": true}]}"#,
        "id",
        &[],
    )?;
    for i in 0..50 {
        client.create_vertex("t", "g", "node", &format!(r#"{{"id": "n{i:02}"}}"#))?;
    }
    println!("cluster of 6 machines, 50 vertices, 3-way replicated");

    // Kill a machine; reads reroute to promoted backups transparently.
    cluster.farm().kill_machine(MachineId(2));
    println!("killed machine m2 — CM promoted backups and re-replicated");
    let mut alive = 0;
    for i in 0..50 {
        if client
            .get_vertex("t", "g", "node", &Json::str(&format!("n{i:02}")))?
            .is_some()
        {
            alive += 1;
        }
    }
    println!("all {alive}/50 vertices still readable; writes still work:");
    client.create_vertex("t", "g", "node", r#"{"id": "after-failure"}"#)?;
    println!("  created 'after-failure' ✓");

    // ---- Fast restart (§5.3) -------------------------------------------
    // A single-machine FaRM cluster: a process crash takes the only replica
    // offline, but PyCo keeps region memory; restart resumes in-place.
    let mut cfg = FarmConfig::small(1);
    cfg.replicas = 1;
    let farm = FarmCluster::start(cfg);
    let ptr = farm.run(MachineId(0), |tx| {
        tx.alloc(64, Hint::Local, b"survives the crash")
    })?;
    println!("\nsingle-machine FaRM cluster: wrote one object");

    farm.crash_process(MachineId(0));
    println!("process crashed — cluster paused (no replicas reachable)");
    assert!(farm.is_paused());

    farm.restart_process(MachineId(0));
    println!("fast restart: reattached PyCo memory, rebuilt allocator by scanning headers");
    let mut tx = farm.begin_read_only(MachineId(0));
    let buf = tx.read(ptr)?;
    println!(
        "object content after restart: {:?}",
        std::str::from_utf8(&buf.data()[..18])?
    );
    Ok(())
}
