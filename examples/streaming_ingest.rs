//! Streaming ingestion demo: feed an at-least-once mutation stream into a
//! cluster through `a1-ingest` — group-commit batching, partition-parallel
//! appliers, and watermark dedup — then redeliver the whole stream and show
//! that nothing changes.
//!
//! ```sh
//! cargo run --release --example streaming_ingest
//! ```

use a1_core::{A1Cluster, A1Config, Json};
use a1_ingest::{IngestConfig, IngestPipeline};
use std::time::Duration;

const SCHEMA: &str = r#"{
    "name": "entity",
    "fields": [
        {"id": 0, "name": "id", "type": "string", "required": true},
        {"id": 1, "name": "rank", "type": "int64"}
    ]
}"#;

fn main() {
    // A 4-machine cluster with the DR replication log on: ingested writes
    // land in the log like any other update transaction (§4).
    let mut cfg = A1Config::small(4);
    cfg.dr_enabled = true;
    let cluster = A1Cluster::start(cfg).expect("cluster");
    let client = cluster.client();
    client.create_tenant("bing").unwrap();
    client.create_graph("bing", "stream").unwrap();
    client
        .create_vertex_type("bing", "stream", SCHEMA, "id", &["rank"])
        .unwrap();
    client
        .create_edge_type("bing", "stream", r#"{"name": "follows", "fields": []}"#)
        .unwrap();

    // The stream arrives as JSON wire records — the replication-log entry
    // shape plus ⟨source, seq⟩ delivery metadata and a routing key.
    let n = 64;
    let vertex = |seq: usize, id: &str| {
        format!(
            r#"{{"op": "put_vertex", "tenant": "bing", "graph": "stream",
                 "type": "entity", "data": {{"id": "{id}", "rank": 1}},
                 "source": "bus0", "seq": {seq}, "pkey": "{id}"}}"#
        )
    };
    let edge = |seq: usize, src: &str, dst: &str| {
        format!(
            r#"{{"op": "put_edge", "tenant": "bing", "graph": "stream",
                 "src_type": "entity", "src": "{src}", "etype": "follows",
                 "dst_type": "entity", "dst": "{dst}",
                 "source": "bus0", "seq": {seq}}}"#
        )
    };

    let pipeline = IngestPipeline::start(
        &cluster,
        IngestConfig {
            partitions: 4, // one applier per machine
            batch_size: 16,
            flush_interval: Duration::from_millis(2),
            ..IngestConfig::default()
        },
    )
    .expect("pipeline");

    // Phase 1: vertices. Phase 2 (after a flush barrier): the edges that
    // reference them.
    let mut seq = 0;
    for i in 0..n {
        seq += 1;
        pipeline
            .submit_json(&vertex(seq, &format!("user{i:03}")))
            .unwrap();
    }
    pipeline.flush().unwrap();
    for i in 0..n - 1 {
        seq += 1;
        pipeline
            .submit_json(&edge(
                seq,
                &format!("user{i:03}"),
                &format!("user{:03}", i + 1),
            ))
            .unwrap();
    }
    pipeline.flush().unwrap();
    let stats = pipeline.stats();
    println!("ingested: {stats:#?}");
    println!(
        "mean group-commit batch: {:.1} records/txn",
        stats.avg_batch()
    );

    // The graph answers queries.
    let count = client
        .query(
            "bing",
            "stream",
            r#"{ "_type": "entity", "rank": 1, "_select": ["_count(*)"] }"#,
        )
        .unwrap();
    println!("vertices via secondary index: {:?}", count.count);

    // At-least-once redelivery: the bus replays everything. Watermarks make
    // it a no-op.
    for i in 0..n {
        pipeline
            .submit_json(&vertex(i + 1, &format!("user{i:03}")))
            .unwrap();
    }
    pipeline.flush().unwrap();
    let replay = pipeline.stats();
    println!(
        "after replaying {} records: applied {} (unchanged), deduped {}",
        n, replay.applied, replay.deduped
    );
    let v = client
        .get_vertex("bing", "stream", "entity", &Json::str("user001"))
        .unwrap();
    println!("user001 still: {}", v.unwrap());
    pipeline.shutdown().unwrap();
}
