//! The cross-query hot-vertex read cache, A/B'd on one cluster.
//!
//! Builds a hub-skewed graph (every query re-reads the same small set of
//! hub vertices homed on a machine remote from the coordinator), then runs the
//! same one-hop predicate query through two clients against the *same*
//! cluster: a cached client and a client listed in
//! `CacheConfig::bypass_clients`. With bandwidth-weighted latency
//! injection on, every cache hit replaces a remote header+payload read
//! pair with a single 32-byte version probe — visible directly in
//! wall-clock time. A churn writer rewrites hub payloads throughout, so
//! the run also demonstrates write-side invalidation + revalidation: the
//! two clients' answers stay identical at every step.
//!
//! ```sh
//! cargo run --release --example hot_vertex_cache
//! ```

use a1_bench::cache::{
    build_graph, count_query, rows_query, suite_config, CacheGraphSpec, CACHED_CLIENT, GRAPH,
    TENANT, UNCACHED_CLIENT,
};
use a1_core::{Json, MachineId, Mutation};
use std::time::Instant;

fn main() {
    let spec = CacheGraphSpec::quick();
    println!(
        "loading cluster ({} hubs x {} B payloads on machine 0)...",
        spec.hubs, spec.payload_bytes
    );
    let cluster = build_graph(suite_config(), &spec);
    let inner = cluster.inner();
    // Pin the coordinator at machine 1 — remote from the hubs — so both
    // clients measure the same read path against the same backend cache
    // (the front-door `A1Client::query` routes round-robin instead).
    let coord = |client: &str, q: &str| {
        inner
            .coordinate_query_for(MachineId(1), TENANT, GRAPH, q, client)
            .expect("query")
    };
    let q = count_query();

    // Warm proxies and the cache with injection off, then measure.
    coord(CACHED_CLIENT, &q);
    coord(UNCACHED_CLIENT, &q);
    cluster.farm().fabric().set_inject_latency(true);

    let mut walls = Vec::new();
    for (label, client) in [("cached", CACHED_CLIENT), ("bypass", UNCACHED_CLIENT)] {
        let t0 = Instant::now();
        let out = coord(client, &q);
        let elapsed = t0.elapsed();
        println!(
            "  {label:<7} count={} wall={:.2} ms  (query metrics: {} hits, {} misses, local reads {}/{})",
            out.count.unwrap(),
            elapsed.as_secs_f64() * 1e3,
            out.metrics.cache_hits,
            out.metrics.cache_misses,
            out.metrics.local_reads,
            out.metrics.local_reads + out.metrics.remote_reads,
        );
        walls.push(elapsed);
    }
    println!(
        "repeated-read speedup (bypass / cached): {:.2}x",
        walls[1].as_secs_f64() / walls[0].as_secs_f64()
    );

    // Rewrite one hub's payload through the batch applier — the
    // invalidation choke point — and show both clients agree on the rows
    // immediately after (the cached client re-reads the touched vertex).
    println!("\nrewriting hub0003's payload through apply_batch_at...");
    cluster
        .client()
        .apply_batch_at(
            MachineId(0),
            &[Mutation::UpsertVertex {
                tenant: TENANT.into(),
                graph: GRAPH.into(),
                ty: "entity".into(),
                attrs: Json::obj(vec![
                    ("id", Json::str("hub0003")),
                    ("rank", Json::Num(1.0)),
                    ("payload", Json::str("rewritten")),
                ]),
            }],
        )
        .expect("rewrite");
    let rq = rows_query();
    let render = |out: &a1_core::QueryOutcome| {
        let mut rows: Vec<String> = out.rows.iter().map(Json::to_string).collect();
        rows.sort();
        rows.join("|")
    };
    let c = coord(CACHED_CLIENT, &rq);
    let b = coord(UNCACHED_CLIENT, &rq);
    assert_eq!(render(&c), render(&b), "cached rows diverged after rewrite");
    println!("cached and bypass rows identical after the rewrite.");

    cluster.farm().fabric().set_inject_latency(false);
    let stats = cluster.cache_stats();
    println!(
        "\ncluster cache stats: {} hits, {} misses, {} evictions, {} entries ({} bytes)",
        stats.hits, stats.misses, stats.evictions, stats.entries, stats.bytes
    );
}
