//! Deterministic simulation walkthrough (crates/sim): run a seeded fault
//! scenario from the catalog, prove byte-identical replay, and drive a
//! hand-rolled fault injection against a simulated cluster.
//!
//! ```sh
//! cargo run --release --example sim_scenario
//! ```

use std::time::Duration;

use a1_sim::workload::{
    build_hub, canonical_state, hub_count_query, seeded_nodes, setup_schema, GRAPH, TENANT,
};
use a1_sim::{catalog, run_by_name, run_scenario, SimEnv};

fn main() {
    // ---- The catalog -------------------------------------------------
    // Every scenario is a named, seeded fault schedule with invariant
    // oracles. The same (scenario, seed) always produces the same trace.
    println!("scenario catalog:");
    for s in catalog() {
        println!("  {}", s.name());
    }

    // ---- Run one scenario and read its oracle report ------------------
    let verdict = run_by_name("coordinator-death-mid-fanout", 42).expect("known scenario");
    println!(
        "\n{} seed={} => {} ({} trace events, trace hash {:016x})",
        verdict.scenario,
        verdict.seed,
        if verdict.passed { "PASS" } else { "FAIL" },
        verdict.events,
        verdict.trace_hash,
    );
    for o in &verdict.oracles {
        println!(
            "  [{}] {}: {}",
            if o.ok { "ok" } else { "FAIL" },
            o.name,
            o.detail
        );
    }
    // Failures print a one-command reproduction; it replays this exact run.
    println!("repro command: {}", verdict.repro_command());

    // ---- Replay: same seed, same universe -----------------------------
    let scenario = a1_sim::by_name("message-loss-storm").unwrap();
    let first = run_scenario(scenario.as_ref(), 7);
    let second = run_scenario(scenario.as_ref(), 7);
    assert_eq!(first.trace_hash, second.trace_hash);
    let third = run_scenario(scenario.as_ref(), 8);
    println!(
        "\nmessage-loss-storm: seed 7 twice -> {:016x} == {:016x}; seed 8 -> {:016x}",
        first.trace_hash, second.trace_hash, third.trace_hash
    );

    // ---- Hand-rolled fault injection ----------------------------------
    // SimEnv owns every nondeterminism source: a virtual clock (time moves
    // only on env.advance), one seeded RNG, and a network fault injector
    // ruling on every simulated verb.
    let env = SimEnv::new(1234, 3);
    let client = env.client();
    setup_schema(&client);
    let spokes = seeded_nodes(&env.rng, 8);
    build_hub(&client, "hub", &spokes);
    let ids: Vec<String> = std::iter::once("hub".to_string())
        .chain(spokes.iter().map(|(id, _)| id.clone()))
        .collect();
    let before = canonical_state(&client, &ids);

    // Drop 1% of RPC messages (one-sided RDMA verbs are exempt: RC
    // retransmits them, so random loss is a messaging-layer fault).
    env.net.set_loss_rate(0.01);
    env.event("fault", "loss storm 1%");
    // Under loss every query either returns the right answer or fails
    // cleanly — a dropped message must never produce a wrong one.
    let (mut ok, mut clean_errors) = (0, 0);
    for _ in 0..10 {
        match client.query(TENANT, GRAPH, &hub_count_query("hub")) {
            Ok(out) => {
                assert_eq!(out.count, Some(spokes.len() as u64));
                ok += 1;
            }
            Err(_) => clean_errors += 1,
        }
        env.advance(Duration::from_micros(20));
    }
    env.net.set_loss_rate(0.0);
    println!(
        "\nloss storm: 10 queries under 1% RPC loss — {ok} correct, {clean_errors} clean errors, 0 wrong answers"
    );

    // Committed state is untouched by dropped messages.
    let after = canonical_state(&client, &ids);
    assert_eq!(before, after);
    println!(
        "canonical state unperturbed across the storm ({} vertices)",
        ids.len()
    );

    // The full trace is the run's fingerprint: render it, hash it, diff it.
    let rendered = env.trace.render();
    println!(
        "\ntrace: {} events, hash {:016x}; last lines:",
        env.trace.len(),
        env.trace.hash()
    );
    for line in rendered
        .lines()
        .rev()
        .take(3)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!("  {line}");
    }
}
