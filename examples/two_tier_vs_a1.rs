//! A1 vs the TAO-style two-tier cache it replaces (paper §1, §5).
//!
//! Demonstrates the three problems the paper lists with the cache-based
//! architecture — client-side queries, eventual consistency, partial edges —
//! and the latency comparison behind the paper's 3.6× claim.
//!
//! ```sh
//! cargo run --release --example two_tier_vs_a1
//! ```

use a1::core::{A1Cluster, A1Config, Json};
use a1_baseline::{TwoTierConfig, TwoTierGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- the partial-edge anomaly (impossible in A1) --------------------
    let tao = TwoTierGraph::new(TwoTierConfig::default());
    tao.object_put("x", &Json::obj(vec![]));
    tao.object_put("y", &Json::obj(vec![]));
    tao.inject_crash_after_forward();
    tao.assoc_add("x", "knows", "y");
    println!("two-tier after crash mid-edge-write:");
    println!("  forward  x→y: {:?}", tao.assoc_range("x", "knows"));
    println!(
        "  backward y→x: {:?}  ← dangling!",
        tao.assoc_range_inverse("y", "knows")
    );

    let a1 = A1Cluster::start(A1Config::small(3))?;
    let client = a1.client();
    client.create_tenant("t")?;
    client.create_graph("t", "g")?;
    client.create_vertex_type(
        "t",
        "g",
        r#"{"name": "node", "fields": [
            {"id": 0, "name": "id", "type": "string", "required": true}]}"#,
        "id",
        &[],
    )?;
    client.create_edge_type("t", "g", r#"{"name": "knows", "fields": []}"#)?;
    client.create_vertex("t", "g", "node", r#"{"id": "x"}"#)?;
    client.create_vertex("t", "g", "node", r#"{"id": "y"}"#)?;
    client.create_edge(
        "t",
        "g",
        "node",
        &Json::str("x"),
        "knows",
        "node",
        &Json::str("y"),
        None,
    )?;
    let fwd = client.query(
        "t",
        "g",
        r#"{"id": "x", "_out_edge": {"_type": "knows", "_vertex": {"_select": ["_count(*)"]}}}"#,
    )?;
    let bwd = client.query(
        "t",
        "g",
        r#"{"id": "y", "_in_edge": {"_type": "knows", "_vertex": {"_select": ["_count(*)"]}}}"#,
    )?;
    println!("A1 (transactional half-edge pair):");
    println!("  forward  x→y: {}", fwd.count.unwrap());
    println!(
        "  backward y→x: {}  ← both halves commit atomically",
        bwd.count.unwrap()
    );

    // ---- 2-hop latency comparison ---------------------------------------
    // Identical topology: one director, 20 films, 8 actors per film.
    for f in 0..20 {
        tao.object_put(&format!("f{f}"), &Json::obj(vec![]));
        tao.assoc_add("director", "film", &format!("f{f}"));
        for a in 0..8 {
            tao.assoc_add(&format!("f{f}"), "actor", &format!("a{:02}", (f + a) % 40));
        }
    }
    let _ = tao.two_hop_count("director", "film", "actor"); // warm caches
    let before = tao.sim_us();
    let n = tao.two_hop_count("director", "film", "actor");
    let tao_ms = (tao.sim_us() - before) as f64 / 1000.0;
    println!("\n2-hop query over 20 films ({n} distinct actors):");
    println!("  two-tier (client-side, warm cache): {tao_ms:.2} ms simulated");
    println!(
        "  every hop is a client↔cluster round trip — {} lookups",
        1 + 20
    );
    println!("  (paper: A1 cut average knowledge-serving latency 3.6×;");
    println!(
        "   run `cargo run -p a1-bench --bin experiments -- baseline` for the measured ratio)"
    );
    Ok(())
}
